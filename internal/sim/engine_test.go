package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.After(10, func() {
		at = append(at, e.Now())
		e.After(5, func() { at = append(at, e.Now()) })
	})
	e.Run()
	if len(at) != 2 || at[0] != 10 || at[1] != 15 {
		t.Fatalf("times = %v", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i*Second, func() { count++ })
	}
	e.RunUntil(5 * Second)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5*Second {
		t.Fatalf("now = %v", e.Now())
	}
	e.RunUntil(20 * Second)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 20*Second {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.Schedule(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestNextEventAt(t *testing.T) {
	e := NewEngine()
	if e.NextEventAt() != MaxTime {
		t.Fatal("empty queue should report MaxTime")
	}
	ev := e.Schedule(42, func() {})
	if e.NextEventAt() != 42 {
		t.Fatalf("next = %v", e.NextEventAt())
	}
	ev.Cancel()
	if e.NextEventAt() != MaxTime {
		t.Fatal("cancelled head should be skipped")
	}
}

func TestTimeConversions(t *testing.T) {
	if FromSeconds(1.5) != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", FromSeconds(1.5))
	}
	if got := (2500 * Millisecond).Seconds(); got != 2.5 {
		t.Fatalf("Seconds = %v", got)
	}
	if (3 * Second).String() != "3s" {
		t.Fatalf("String = %q", (3 * Second).String())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// the scheduling order.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, o := range offsets {
			at := Time(o)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandPick(t *testing.T) {
	r := NewRand(1)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[r.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[1])
	}
	if counts[2] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
	// All-zero weights fall back to uniform without panicking.
	_ = r.Pick([]float64{0, 0})
}

func TestRandClamps(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		if r.Normal(0.001, 10) < 0 {
			t.Fatal("Normal returned negative")
		}
	}
	if r.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestRandJitter(t *testing.T) {
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		d := r.Jitter(1000, 0.1)
		if d < 900 || d > 1100 {
			t.Fatalf("jitter out of range: %v", d)
		}
	}
	if r.Jitter(123, 0) != 123 {
		t.Fatal("zero jitter should be identity")
	}
}
