package ckpt

import (
	"testing"
	"testing/quick"

	"c4/internal/sim"
)

func TestSnapshotCadence(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{Interval: 10, SaveStall: sim.Second})
	stalls := 0
	for i := 1; i <= 100; i++ {
		if d := m.OnIteration(i, []int{0, 1}); d > 0 {
			if d != sim.Second {
				t.Fatalf("stall = %v", d)
			}
			stalls++
		}
	}
	if stalls != 10 || m.Saves() != 10 {
		t.Fatalf("stalls = %d, saves = %d, want 10", stalls, m.Saves())
	}
	s, ok := m.Latest()
	if !ok || s.Iteration != 100 {
		t.Fatalf("latest = %+v", s)
	}
}

func TestRestoreSurvivingHolder(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{Interval: 5, PersistEvery: 0})
	for i := 1; i <= 20; i++ {
		m.OnIteration(i, []int{3, 7})
	}
	// Node 3 dies; node 7 still holds the newest snapshot.
	s, ok := m.Restore(3)
	if !ok || s.Iteration != 20 {
		t.Fatalf("restore = %+v ok=%v", s, ok)
	}
	if got := m.LostIterations(23, 3); got != 3 {
		t.Fatalf("lost = %d, want 3", got)
	}
}

func TestRestoreFallsBackToPersisted(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{
		Interval: 5, PersistEvery: 2, PersistTime: sim.Second, Replicas: 1,
	})
	// Snapshots at iters 5,10,15,20; flushes start after 10 and 20.
	for i := 1; i <= 20; i++ {
		m.OnIteration(i, []int{4}) // single holder: node 4
		eng.RunFor(10 * sim.Second)
	}
	// Node 4 dies: all in-memory copies gone; newest persisted is iter 20.
	s, ok := m.Restore(4)
	if !ok {
		t.Fatal("expected persisted snapshot")
	}
	if !s.Persisted || s.Iteration != 20 {
		t.Fatalf("restore = %+v", s)
	}
}

func TestRestoreNothingSurvives(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{Interval: 5, PersistEvery: 0, Replicas: 1})
	for i := 1; i <= 10; i++ {
		m.OnIteration(i, []int{2})
	}
	if _, ok := m.Restore(2); ok {
		t.Fatal("nothing should survive sole-holder loss")
	}
	if got := m.LostIterations(12, 2); got != 12 {
		t.Fatalf("lost = %d, want all 12", got)
	}
}

func TestPersistIsAsynchronous(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{Interval: 1, PersistEvery: 1, PersistTime: sim.Minute, Replicas: 1})
	m.OnIteration(1, []int{0})
	s, _ := m.Latest()
	if s.Persisted {
		t.Fatal("snapshot persisted before flush completed")
	}
	eng.RunFor(2 * sim.Minute)
	s, _ = m.Latest()
	if !s.Persisted {
		t.Fatal("flush never completed")
	}
	if s.PersistedAt != sim.Minute {
		t.Fatalf("persisted at %v", s.PersistedAt)
	}
}

func TestDefaults(t *testing.T) {
	m := NewManager(sim.NewEngine(), Config{})
	cfg := m.Config()
	if cfg.Interval != 10 || cfg.Replicas != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
	if (Snapshot{Iteration: 3, Holders: []int{1}}).String() == "" {
		t.Fatal("empty string")
	}
}

// TestPersistEveryOne: the paranoid regime where every snapshot flushes
// to remote storage. Each save must start a flush, and once the flushes
// complete, the newest snapshot survives losing every in-memory holder.
func TestPersistEveryOne(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{Interval: 2, PersistEvery: 1, PersistTime: sim.Second, Replicas: 1})
	for i := 1; i <= 10; i++ {
		m.OnIteration(i, []int{5})
		eng.RunFor(10 * sim.Second) // let each flush complete
	}
	if m.Saves() != 5 {
		t.Fatalf("saves = %d, want 5", m.Saves())
	}
	if m.persisted != 5 {
		t.Fatalf("persisted = %d, want every snapshot flushed", m.persisted)
	}
	// Sole holder dies: the newest snapshot must still restore, persisted.
	s, ok := m.Restore(5)
	if !ok || !s.Persisted || s.Iteration != 10 {
		t.Fatalf("restore = %+v ok=%v, want persisted iter 10", s, ok)
	}
	if got := m.LostIterations(11, 5); got != 1 {
		t.Fatalf("lost = %d, want 1", got)
	}
}

// TestFailureDestroysBothReplicas: degenerate replica placement puts both
// in-memory copies on the same node (self twice); losing that node must
// fall back to the last *completed* persistent flush, skipping the newer
// in-memory-only and still-flushing snapshots.
func TestFailureDestroysBothReplicas(t *testing.T) {
	eng := sim.NewEngine()
	m := NewManager(eng, Config{
		Interval: 5, PersistEvery: 2, PersistTime: 20 * sim.Second, Replicas: 2,
	})
	// Snapshots at iters 5,10,15,20; flushes start after 10 and 20.
	for i := 1; i <= 20; i++ {
		m.OnIteration(i, []int{4, 4}) // both replicas on node 4
		eng.RunFor(2 * sim.Second)
	}
	// 40 s in: the iter-10 flush (armed at 20 s, +20 s) completed; the
	// iter-20 flush (armed at 40 s) has not.
	s, ok := m.Restore(4)
	if !ok {
		t.Fatal("expected the completed persistent flush to survive")
	}
	if !s.Persisted || s.Iteration != 10 {
		t.Fatalf("restore = %+v, want persisted iter 10 (iter-20 flush still in flight)", s)
	}
	if got := m.LostIterations(22, 4); got != 12 {
		t.Fatalf("lost = %d, want 12", got)
	}
	// The same failure with no persistence loses everything.
	eng2 := sim.NewEngine()
	m2 := NewManager(eng2, Config{Interval: 5, PersistEvery: 0})
	for i := 1; i <= 20; i++ {
		m2.OnIteration(i, []int{4, 4})
	}
	if _, ok := m2.Restore(4); ok {
		t.Fatal("dual-replica loss with no persistence must restore nothing")
	}
}

// TestConfigEdgeDefaults pins the withDefaults corners the other tests
// skip: negative stall clamps to zero, negative PersistEvery disables
// persistence instead of wrapping.
func TestConfigEdgeDefaults(t *testing.T) {
	m := NewManager(sim.NewEngine(), Config{Interval: 1, SaveStall: -sim.Second, PersistEvery: -3})
	cfg := m.Config()
	if cfg.SaveStall != 0 {
		t.Fatalf("SaveStall = %v, want clamped to 0", cfg.SaveStall)
	}
	if cfg.PersistEvery != 0 {
		t.Fatalf("PersistEvery = %d, want 0 (disabled)", cfg.PersistEvery)
	}
	if d := m.OnIteration(1, []int{0}); d != 0 {
		t.Fatalf("stall = %v with clamped SaveStall", d)
	}
}

// Property: lost work never exceeds the checkpoint interval plus the
// persistence lag when a surviving holder exists.
func TestBoundedLossProperty(t *testing.T) {
	f := func(seed int64, iters uint8) bool {
		eng := sim.NewEngine()
		interval := 1 + int(seed%7+7)%7 + 1 // 2..8
		m := NewManager(eng, Config{Interval: interval, PersistEvery: 0})
		n := int(iters)%200 + interval
		for i := 1; i <= n; i++ {
			m.OnIteration(i, []int{0, 1}) // node 1 always survives
		}
		lost := m.LostIterations(n, 0)
		return lost < interval
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
