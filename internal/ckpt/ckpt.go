// Package ckpt implements the checkpointing subsystem the C4 paper leans
// on for fast recovery (§II-C): after C4D shrank detection and diagnosis
// to seconds, the dominant remaining cost is the work lost since the last
// checkpoint, so the deployment adopted frequent (≈10-minute / every ~10
// iterations) in-memory checkpoints in the style of Gemini [53].
//
// The manager models a two-tier scheme:
//
//   - in-memory snapshot: cheap (sub-second stall), kept on the host RAM
//     of the node and a peer, taken every Interval iterations;
//   - persistent flush: a background copy to remote storage every
//     PersistEvery snapshots, which survives correlated node loss.
//
// Recovery restores the newest snapshot that survives the failure: the
// in-memory one unless the failure took its replicas, else the persistent
// one.
package ckpt

import (
	"fmt"

	"c4/internal/sim"
)

// Config tunes the checkpoint manager.
type Config struct {
	// Interval is the number of iterations between in-memory snapshots.
	Interval int
	// SaveStall is the training stall per in-memory snapshot (the copy to
	// host memory is synchronous for consistency; Gemini measures <1 s).
	SaveStall sim.Time
	// PersistEvery is how many in-memory snapshots between persistent
	// flushes (0 disables persistence).
	PersistEvery int
	// PersistTime is the background flush duration; a snapshot is only
	// crash-proof once its flush completes.
	PersistTime sim.Time
	// Replicas is the number of nodes holding each in-memory snapshot
	// (self + peers). A failure wiping all replicas forces a fall back to
	// the last persisted snapshot.
	Replicas int
}

// DefaultConfig mirrors the paper's deployment: a snapshot every 10
// iterations, ~0.5 s stall, persisted every 6 snapshots.
func DefaultConfig() Config {
	return Config{
		Interval:     10,
		SaveStall:    500 * sim.Millisecond,
		PersistEvery: 6,
		PersistTime:  30 * sim.Second,
		Replicas:     2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Interval <= 0 {
		c.Interval = d.Interval
	}
	if c.SaveStall < 0 {
		c.SaveStall = 0
	}
	if c.Replicas <= 0 {
		c.Replicas = d.Replicas
	}
	if c.PersistEvery < 0 {
		c.PersistEvery = 0
	}
	return c
}

// Snapshot is one saved training state.
type Snapshot struct {
	Iteration int
	TakenAt   sim.Time
	// Holders are the nodes keeping the in-memory copy.
	Holders []int
	// Persisted reports whether the background flush completed.
	Persisted   bool
	PersistedAt sim.Time
}

// Manager tracks snapshots for one job.
type Manager struct {
	cfg Config
	eng *sim.Engine

	snaps     []Snapshot
	sinceLast int
	saves     int
	persisted int
}

// NewManager creates a manager bound to the engine.
func NewManager(eng *sim.Engine, cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), eng: eng}
}

// Config returns the effective configuration.
func (m *Manager) Config() Config { return m.cfg }

// Saves reports the number of snapshots taken.
func (m *Manager) Saves() int { return m.saves }

// OnIteration is called by the job after each completed iteration; it
// returns the stall to add to the next iteration (zero unless a snapshot
// was due). holders are the nodes replicating this snapshot (typically the
// saving node plus a ring peer).
func (m *Manager) OnIteration(iter int, holders []int) sim.Time {
	m.sinceLast++
	if m.sinceLast < m.cfg.Interval {
		return 0
	}
	m.sinceLast = 0
	m.saves++
	snap := Snapshot{
		Iteration: iter,
		TakenAt:   m.eng.Now(),
		Holders:   append([]int(nil), holders...),
	}
	idx := len(m.snaps)
	m.snaps = append(m.snaps, snap)
	if m.cfg.PersistEvery > 0 && m.saves%m.cfg.PersistEvery == 0 {
		m.eng.After(m.cfg.PersistTime, func() {
			m.snaps[idx].Persisted = true
			m.snaps[idx].PersistedAt = m.eng.Now()
			m.persisted++
		})
	}
	return m.cfg.SaveStall
}

// Latest returns the newest snapshot, persisted or not; ok is false when
// no snapshot exists yet.
func (m *Manager) Latest() (Snapshot, bool) {
	if len(m.snaps) == 0 {
		return Snapshot{}, false
	}
	return m.snaps[len(m.snaps)-1], true
}

// Restore returns the newest snapshot that survives the loss of
// failedNode: an in-memory snapshot survives if any holder is alive, else
// the newest persisted snapshot is used. ok is false if nothing survives
// (restart from iteration 0).
func (m *Manager) Restore(failedNode int) (Snapshot, bool) {
	for i := len(m.snaps) - 1; i >= 0; i-- {
		s := m.snaps[i]
		if s.Persisted {
			return s, true
		}
		alive := false
		for _, h := range s.Holders {
			if h != failedNode {
				alive = true
				break
			}
		}
		if alive {
			return s, true
		}
	}
	return Snapshot{}, false
}

// LostIterations reports how many iterations of work a crash at the given
// iteration loses, after restoring around failedNode.
func (m *Manager) LostIterations(crashIter, failedNode int) int {
	s, ok := m.Restore(failedNode)
	if !ok {
		return crashIter
	}
	lost := crashIter - s.Iteration
	if lost < 0 {
		lost = 0
	}
	return lost
}

func (s Snapshot) String() string {
	kind := "in-memory"
	if s.Persisted {
		kind = "persisted"
	}
	return fmt.Sprintf("snapshot@iter%d (%s, holders %v)", s.Iteration, kind, s.Holders)
}
