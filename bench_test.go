package c4

// One benchmark per table/figure of the paper's evaluation, so
// `go test -bench=. -benchmem` regenerates the whole study and reports the
// simulation cost of each experiment. The seed is fixed: every iteration
// still performs the full simulation (results flow into CheckShape, so
// nothing can be elided), and shape bounds are statistical — sweeping
// thousands of seeds under -benchtime would eventually (and correctly)
// find a >4σ Monte-Carlo draw, which is fuzzing, not benchmarking. Seed
// sweeps live in the harness tests.

import (
	"testing"

	"c4/internal/harness"
)

const benchSeed = 1

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunTableI(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunTableIII(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3ScaleSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig3(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9DualPortBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig9(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10aOversub1to1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig10(benchSeed, 8)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bOversub2to1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig10(benchSeed, 4)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11CNPRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig11(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12LinkFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig12(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13PortBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig13(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14RealJobs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunFig14(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveRecoveryPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunPipeline(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlaneRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunPlaneRuleAblation(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRingVsTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunAlgoCrossover(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCkptInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunCkptSweep(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKappa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunKappaSweep(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationQPsPerConn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunQPSweep(benchSeed)
		if err := r.CheckShape(); err != nil {
			b.Fatal(err)
		}
	}
}
