module c4

go 1.22
