# Tier-1 verification plus the race-enabled CI loop for the C4
# reproduction. `make ci` is the one-command gate: vet + build + the full
# test suite, then the short suite again under the race detector (which
# also proves the parallel scenario runner shares no state).

GO ?= go

.PHONY: all build vet test test-race ci bench experiments clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full tier-1 suite: every scenario's shape check plus the byte-identical
# serial-vs-parallel replay comparison.
test:
	$(GO) test ./...

# Short suite under the race detector: slow sweeps are skipped, every
# other scenario still runs twice (serially and on the worker pool).
test-race:
	$(GO) test -race -short ./...

ci: vet build test test-race

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the paper-vs-measured table from a full registry sweep.
experiments:
	$(GO) run ./cmd/c4bench -md > EXPERIMENTS.md

clean:
	$(GO) clean ./...
