# Tier-1 verification plus the race-enabled CI loop for the C4
# reproduction. `make ci` is the one-command gate: lint (gofmt + vet +
# the c4vet determinism-lint suite) + build + the full test suite, then
# the short suite again under the race detector (which also proves the
# parallel scenario and campaign runners share no state). The GitHub
# workflow (.github/workflows/ci.yml) runs the same targets plus the
# bench-regression guard and a coverage report, so local and CI gates
# agree.

GO ?= go
SHA := $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

.PHONY: all build vet c4vet lint fmt-check test test-race kernel-race \
	tenancy-smoke telemetry-smoke plan-smoke serve-smoke trace-smoke \
	campaign-smoke docker \
	ci bench experiments bench-json bench-baseline bench-check cover clean

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The determinism-lint suite (internal/analysis via cmd/c4vet): the
# replay invariants that have each shipped as a real bug before —
# map-order float accumulation, wall-clock reads in simulation packages,
# process-global randomness, swallowed telemetry errors, severed
# Contexts — plus the deprecated-API gate. Zero unsuppressed findings or
# the build fails; suppress per line with `//c4vet:allow <name> <reason>`
# (reason mandatory, unused directives are themselves findings).
c4vet:
	$(GO) run ./cmd/c4vet ./...

# The blocking first gate, locally and in CI: formatting, stock vet
# passes (copylocks, lostcancel, ...), then the c4vet suite.
lint: fmt-check vet c4vet

# Fast formatting gate: fails listing any file gofmt would rewrite.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Full tier-1 suite: every scenario's shape check plus the byte-identical
# serial-vs-parallel replay comparison.
test:
	$(GO) test ./...

# Short suite under the race detector: slow sweeps are skipped, every
# other scenario still runs twice (serially and on the worker pool).
test-race:
	$(GO) test -race -short ./...

# The network kernel's parallel component settle under the race detector,
# without -short: the full kernel-equivalence suite (netsim unit tests,
# engine heap tests, collective-level accl tests) plus the 256-node
# netsim/scale-* scenarios, which fill many components on worker pools.
kernel-race:
	$(GO) test -race ./internal/sim/ ./internal/netsim/ ./internal/accl/
	$(GO) run -race ./cmd/c4bench -only 'netsim/*'

# One small multi-tenant churn trial through the registry: Poisson job
# arrivals/departures on a shared fabric, with the shape check asserting
# every tenant made progress. Fast enough to run on every CI push.
tenancy-smoke:
	$(GO) run ./cmd/c4bench -only tenancy/churn

# The streaming-telemetry race through the registry: online detector vs
# batch C4D on three fault archetypes, with the shape check asserting the
# online time-to-detect strictly beats batch for every fault.
telemetry-smoke:
	$(GO) run ./cmd/c4bench -only online/detection-latency

# The training-iteration planner through the registry: a compiled 1F1B
# schedule with bucketed gradient sync, overlap on vs off, with the shape
# check asserting overlap strictly reduces exposed communication.
plan-smoke:
	$(GO) run ./cmd/c4bench -only plan/overlap-ablation

# The serving-plane e2e: boot the c4serve daemon on an in-process
# loopback listener, drive one session over real HTTP + SSE, and diff the
# streamed telemetry byte-for-byte against the one-shot -telemetry-out
# path (plus exact metric equality). Hermetic: no curl, no fixed port.
serve-smoke:
	$(GO) run ./cmd/c4serve -smoke

# The tracing e2e: run a short planned session with -trace-out, then
# validate the exported Chrome trace with c4trace -check (parses, has
# spans, yields a critical path from every iteration root). Proves the
# c4sim flag, the session tracer wiring, the exporter and the parser
# against each other on every CI push.
trace-smoke:
	$(GO) run ./cmd/c4sim -plan tp8/pp2/dp2/ga2 -plan-iters 2 -trace-out TRACE_smoke.json > /dev/null
	$(GO) run ./cmd/c4trace -check TRACE_smoke.json
	$(GO) run ./cmd/c4trace TRACE_smoke.json > /dev/null
	@rm -f TRACE_smoke.json

# The campaign-subsystem e2e: run the committed smoke manifest twice —
# serially and as two shards with checkpoints — merge both paths and
# require byte-identical reports (cmp), then validate with `c4campaign
# check`. Proves the manifest/shard/merge determinism contract on every
# CI push.
campaign-smoke:
	$(GO) run ./cmd/c4campaign run -manifest campaigns/smoke.json -out CAMP_serial.json
	$(GO) run ./cmd/c4campaign run -manifest campaigns/smoke.json -shard 0/2 -checkpoint CAMP_s0.ckpt -out CAMP_p0.json
	$(GO) run ./cmd/c4campaign run -manifest campaigns/smoke.json -shard 1/2 -checkpoint CAMP_s1.ckpt -out CAMP_p1.json
	$(GO) run ./cmd/c4campaign merge -manifest campaigns/smoke.json -check -out CAMP_merged_serial.json CAMP_serial.json > /dev/null
	$(GO) run ./cmd/c4campaign merge -manifest campaigns/smoke.json -check -out CAMP_merged.json CAMP_p0.json CAMP_p1.json > /dev/null
	cmp CAMP_merged_serial.json CAMP_merged.json
	$(GO) run ./cmd/c4campaign check -manifest campaigns/smoke.json CAMP_merged.json
	@rm -f CAMP_serial.json CAMP_p0.json CAMP_p1.json CAMP_merged_serial.json CAMP_merged.json CAMP_s0.ckpt CAMP_s1.ckpt

# Container image for the daemon (requires docker; CI runs it on push).
docker:
	docker build -t c4serve:$(SHA) .

ci: lint build test test-race kernel-race tenancy-smoke telemetry-smoke plan-smoke serve-smoke trace-smoke campaign-smoke

# Microbenchmarks, including the incremental-vs-full-recompute pair
# (internal/telemetry: BenchmarkIncrementalObserve vs
# BenchmarkBatchAnalyzePass) behind the online/scale-sweep scenario and
# the network-kernel trio (internal/netsim: BenchmarkRecomputePerFlow vs
# BenchmarkRecomputeAggregated vs BenchmarkSettleParallel).
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the paper-vs-measured table from a full registry sweep.
experiments:
	$(GO) run ./cmd/c4bench -md > EXPERIMENTS.md

# Bench-regression guard. Every tracked scenario metric is deterministic,
# so the committed baseline (bench/baseline.json) pins behavior; benchdiff
# fails on >5% drift. Regenerate the baseline when a change is intended.
bench-json:
	$(GO) run ./cmd/c4bench -json > BENCH_$(SHA).json
	@echo wrote BENCH_$(SHA).json

bench-baseline:
	$(GO) run ./cmd/c4bench -json > bench/baseline.json

bench-check:
	$(GO) run ./cmd/c4bench -json > BENCH_current.json
	$(GO) run ./cmd/benchdiff -tol 0.05 bench/baseline.json BENCH_current.json

# Coverage gate: the profile plus a blocking floor on total statement
# coverage. Raise the floor when coverage improves; never lower it to
# sneak a PR through.
COVER_FLOOR ?= 72
cover:
	$(GO) test -short -covermode=atomic -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -n 1 | awk '{gsub(/%/,"",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "FAIL: coverage $$total% below floor $(COVER_FLOOR)%"; exit 1; }

clean:
	$(GO) clean ./...
	rm -f cover.out BENCH_*.json TRACE_smoke.json CAMP_*.json CAMP_*.ckpt
