package c4

// End-to-end tests through the public facade: everything a downstream user
// touches must work without reaching into internal packages.

import (
	"context"
	"testing"
)

func TestFacadeAllReduceECMPvsC4P(t *testing.T) {
	run := func(kind ProviderKind) float64 {
		env := mustEnv(t, MultiJobTestbed(8))
		comm, err := NewCommunicator(CommConfig{
			Engine: env.Eng, Net: env.Net, Provider: env.NewProvider(kind, 1),
		}, []int{0, 8, 1, 9})
		if err != nil {
			t.Fatal(err)
		}
		var busbw float64
		comm.AllReduce(256<<20, nil, func(r CollResult) { busbw = r.BusGbps })
		env.Eng.Run()
		return busbw
	}
	base, planned := run(BaselineECMP), run(C4PStatic)
	if planned < 330 {
		t.Fatalf("C4P busbw = %.1f, want ≈362", planned)
	}
	if base >= planned {
		t.Fatalf("baseline (%.1f) should trail C4P (%.1f)", base, planned)
	}
}

func TestFacadeC4DPipeline(t *testing.T) {
	env := mustEnv(t, PaperTestbed())
	master := NewC4DMaster(C4DConfig{})
	fleet := NewC4DFleet(env.Eng, master)
	var events []C4DEvent
	master.Subscribe(func(ev C4DEvent) { events = append(events, ev) })

	comm, err := NewCommunicator(CommConfig{
		Engine: env.Eng, Net: env.Net,
		Provider: mustC4PMaster(t, env.Topo),
		Sink:     fleet,
	}, []int{0, 2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	var iterate func()
	iterate = func() {
		comm.AllReduce(64<<20, nil, func(CollResult) { iterate() })
	}
	iterate()
	env.Eng.Schedule(10*Second, func() { comm.SetCrashed(4, true) })
	env.Eng.RunUntil(2 * Minute)
	fleet.Stop()

	if len(events) == 0 {
		t.Fatal("no C4D events through the facade")
	}
	if events[0].Syndrome != NonCommHang || events[0].Node != 4 {
		t.Fatalf("first event = %v, want non-comm-hang node 4", events[0])
	}
}

func TestFacadeJobAndWorkloads(t *testing.T) {
	env := mustEnv(t, MultiJobTestbed(8))
	spec := JobSpec{
		Name:                 "facade-test",
		Model:                GPT22B,
		Par:                  Parallelism{TP: 8, DP: 4, GA: 1},
		Nodes:                []int{0, 8, 1, 9},
		ComputePerMicroBatch: 300 * Millisecond,
		SamplesPerIter:       16,
	}
	j, err := NewJob(JobConfig{
		Engine: env.Eng, Net: env.Net,
		Provider: env.NewProvider(C4PStatic, 1),
		Rails:    []int{0}, Spec: spec, Rand: NewRand(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	var rep JobReport
	j.Run(3, func(r JobReport) { rep = r })
	env.Eng.Run()
	if rep.Iters != 3 || rep.SamplesPerSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFacadeOperationalSubsystems(t *testing.T) {
	env := mustEnv(t, MultiJobTestbed(8))

	// Scheduler packs a leaf group.
	sc := NewScheduler(env.Topo)
	nodes, err := sc.Allocate(8)
	if err != nil {
		t.Fatal(err)
	}
	g := env.Topo.Group(nodes[0])
	for _, n := range nodes {
		if env.Topo.Group(n) != g {
			t.Fatalf("allocation spans groups: %v", nodes)
		}
	}

	// Checkpoint manager bounds lost work.
	cm := NewCheckpointManager(env.Eng, CheckpointConfig{Interval: 5})
	for i := 1; i <= 17; i++ {
		cm.OnIteration(i, []int{0, 1})
	}
	if lost := cm.LostIterations(17, 0); lost != 2 {
		t.Fatalf("lost = %d, want 2", lost)
	}

	// RCA turns telemetry into a ranked cause.
	an := NewRCAnalyzer(0)
	an.Observe(Telemetry{Time: Minute, Kind: 1 /* ECC */, Node: 3})
	rep := an.Classify(C4DEvent{Time: 2 * Minute, Syndrome: NonCommHang, Node: 3, Peer: -1})
	if rep.Top().Confidence <= 0 {
		t.Fatalf("rca report = %v", rep)
	}

	// Fault injector and machines.
	inj := NewMachines(4, 8, 2)
	if inj.SpareCount() != 2 {
		t.Fatal("machines facade broken")
	}
}

func TestFacadeExperimentRunners(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runners covered in internal/harness")
	}
	// One cheap runner end-to-end through the facade.
	r := RunTableI(1)
	if err := r.CheckShape(); err != nil {
		t.Fatal(err)
	}
	k := RunKappaSweep(1)
	if err := k.CheckShape(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeScenarioRegistry(t *testing.T) {
	// The paper's experiments arrive with the facade import.
	if len(Scenarios()) == 0 {
		t.Fatal("no scenarios registered through the facade")
	}
	s, ok := GetScenario("nccltest")
	if !ok {
		t.Fatal("nccltest scenario missing")
	}
	rep := RunScenario(context.Background(), s, 1)
	if rep.Err != nil || rep.ShapeErr != nil {
		t.Fatalf("nccltest: err=%v shape=%v", rep.Err, rep.ShapeErr)
	}

	// Downstream users can register and select their own workloads. The
	// registry is process-global, so guard against re-registration when
	// the test binary reruns in one process (go test -count=N).
	if _, dup := GetScenario("facade-custom"); !dup {
		RegisterScenario(Scenario{
			Name: "facade-custom", Group: "test", Description: "facade registration",
			Paper: "n/a",
			Run: func(c *ScenarioCtx) ScenarioResult {
				return RunScenario(c.Context, s, c.Seed).Result
			},
		})
	}
	sel, err := SelectScenarios("facade-custom")
	if err != nil || len(sel) != 1 {
		t.Fatalf("SelectScenarios = %v, %v", sel, err)
	}
	runner := &ScenarioRunner{Workers: 2}
	reps := runner.Run(context.Background(), 1, append(sel, s))
	if reps[0].Err != nil || reps[1].Err != nil {
		t.Fatalf("runner through facade: %+v", reps)
	}
	if reps[0].Result.String() != reps[1].Result.String() {
		t.Fatal("custom wrapper diverged from direct run")
	}
}

// mustEnv exercises the options-struct constructor the facade now centers
// on; every facade test environment flows through it.
func mustEnv(t *testing.T, spec ClusterSpec) *Env {
	t.Helper()
	env, err := OpenEnv(EnvOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func mustC4PMaster(t *testing.T, topo *Topology) *C4PMaster {
	t.Helper()
	m, err := OpenC4PMaster(C4PMasterOptions{Topology: topo, Mode: C4PStaticMode, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}
