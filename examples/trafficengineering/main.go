// Traffic engineering: eight tenants run collective benchmarks on a shared
// fat-tree at the same time (the paper's Fig 10 scenario). Under ECMP the
// tenants collide and see wildly different bandwidth; under the C4P master
// every QP gets its own spine path and all eight converge near the fabric
// peak.
package main

import (
	"fmt"
	"log"

	"c4"
	"c4/internal/harness"
)

func main() {
	for _, kind := range []c4.ProviderKind{c4.BaselineECMP, c4.C4PStatic} {
		env, err := c4.OpenEnv(c4.EnvOptions{Spec: c4.MultiJobTestbed(8)})
		if err != nil {
			log.Fatal(err)
		}
		prov := env.NewProvider(kind, 1)

		// Job i spans nodes {i, i+8}: one server per leaf group, so all
		// traffic crosses the spine layer and tenants can collide.
		var benches []*harness.Bench
		for i := 0; i < 8; i++ {
			b, err := harness.StartBench(env, harness.BenchConfig{
				Nodes:      []int{i, i + 8},
				Bytes:      512 << 20,
				Until:      30 * c4.Second,
				Provider:   prov,
				QPsPerConn: 2,
				Seed:       int64(i),
			})
			if err != nil {
				panic(err)
			}
			benches = append(benches, b)
		}
		env.Eng.RunUntil(45 * c4.Second)

		fmt.Printf("%v:\n", kind)
		var sum float64
		for i, b := range benches {
			m := b.MeanBusGbps()
			sum += m
			fmt.Printf("  task %d: %6.1f Gbps\n", i+1, m)
		}
		fmt.Printf("  aggregate: %.1f Gbps\n\n", sum)
	}
}
