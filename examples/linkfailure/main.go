// Link failure: the paper's Fig 12 scenario as a runnable program. Eight
// tenants share a 1:1 fat-tree; one of the eight uplinks of a loaded leaf
// switch dies mid-run. With static traffic engineering the orphaned flows
// rehash onto random survivors and pile up; with C4P dynamic load balance
// the master re-places them and ACCL shifts bytes toward the fastest
// paths, recovering close to the 7/8 ideal.
package main

import (
	"fmt"
	"log"

	"c4"
	"c4/internal/harness"
	"c4/internal/metrics"
	"c4/internal/topo"
)

func main() {
	const (
		failAt  = 20 * c4.Second
		horizon = 60 * c4.Second
	)
	run := func(kind c4.ProviderKind, qps int, adaptive bool) (pre, post float64) {
		env, err := c4.OpenEnv(c4.EnvOptions{Spec: c4.MultiJobTestbed(8)})
		if err != nil {
			log.Fatal(err)
		}
		prov := env.NewProvider(kind, 1)
		var benches []*harness.Bench
		for i := 0; i < 8; i++ {
			b, err := harness.StartBench(env, harness.BenchConfig{
				Nodes: []int{i, i + 8}, Bytes: 512 << 20, Until: horizon,
				Provider: prov, QPsPerConn: qps, Adaptive: adaptive, Seed: int64(i),
			})
			if err != nil {
				panic(err)
			}
			benches = append(benches, b)
		}
		env.Eng.Schedule(failAt, func() {
			leaf := env.Topo.LeafAt(0, 0, 0)
			env.Net.SetLinkUp(leaf.Ups[2], false)
			env.Net.SetLinkUp(leaf.Downs[2], false)
			// The withdrawal remaps the leaf's ECMP buckets: every flow
			// through it re-resolves its path.
			for _, b := range benches {
				b.Comm.RefreshPaths(func(p *topo.Path) bool {
					return p.Spine != nil && (p.SrcPort.Leaf == leaf || p.DstPort.Leaf == leaf)
				})
			}
		})
		env.Eng.RunUntil(horizon + 20*c4.Second)

		var preV, postV []float64
		for _, b := range benches {
			for _, s := range b.Series.Samples {
				if s.T < failAt.Seconds() {
					preV = append(preV, s.V)
				} else if s.T > (failAt + 10*c4.Second).Seconds() {
					postV = append(postV, s.V)
				}
			}
		}
		return metrics.Mean(preV), metrics.Mean(postV)
	}

	sPre, sPost := run(c4.C4PStatic, 2, false)
	dPre, dPost := run(c4.C4PDynamic, 8, true)
	fmt.Printf("one of 8 uplinks fails at %v (ideal after failure: 7/8 of peak)\n\n", failAt)
	fmt.Printf("%-28s %10s %10s\n", "mode", "pre-fail", "post-fail")
	fmt.Printf("%-28s %9.1f %9.1f Gbps\n", "static traffic engineering", sPre, sPost)
	fmt.Printf("%-28s %9.1f %9.1f Gbps\n", "dynamic load balance", dPre, dPost)
	fmt.Printf("\ndynamic recovers %+.1f%% over static\n", (dPost/sPost-1)*100)
}
