// Fault detection: a BSP training loop runs under C4D monitoring while
// three classic production anomalies are injected one after another — a
// compute straggler, a receive-side NIC degradation, and a crashed worker.
// C4D localizes each from collective-communication timing alone, exactly
// the mechanism of the paper's §III-A.
package main

import (
	"fmt"
	"log"

	"c4"
)

func main() {
	env, err := c4.OpenEnv(c4.EnvOptions{Spec: c4.PaperTestbed()})
	if err != nil {
		log.Fatal(err)
	}

	master := c4.NewC4DMaster(c4.C4DConfig{})
	fleet := c4.NewC4DFleet(env.Eng, master)
	master.Subscribe(func(ev c4.C4DEvent) {
		fmt.Printf("  C4D finding: %v\n", ev)
	})

	nodes := []int{0, 2, 4, 6, 8, 10}
	prov, err := c4.OpenC4PMaster(c4.C4PMasterOptions{
		Topology: env.Topo, Mode: c4.C4PStaticMode, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	comm, err := c4.NewCommunicator(c4.CommConfig{
		Engine:   env.Eng,
		Net:      env.Net,
		Provider: prov,
		Sink:     fleet,
	}, nodes)
	if err != nil {
		log.Fatal(err)
	}

	// BSP loop: 100 ms compute + 64 MiB allreduce, forever.
	straggle := map[int]c4.Time{}
	var iterate func()
	iterate = func() {
		now := env.Eng.Now()
		arrivals := make([]c4.Time, len(nodes))
		for i, n := range nodes {
			arrivals[i] = now + 100*c4.Millisecond + straggle[n]
		}
		comm.AllReduce(64<<20, arrivals, func(c4.CollResult) { iterate() })
	}
	iterate()

	at := func(t c4.Time, what string, f func()) {
		env.Eng.Schedule(t, func() {
			fmt.Printf("[%v] inject: %s\n", t, what)
			f()
		})
	}
	at(20*c4.Second, "node 4 becomes a straggler (+200ms compute)", func() {
		straggle[4] = 200 * c4.Millisecond
	})
	at(60*c4.Second, "straggler repaired", func() {
		delete(straggle, 4)
	})
	at(90*c4.Second, "node 8 receive side degrades to 25 Gbps", func() {
		for p := 0; p < 2; p++ {
			env.Net.SetLinkCapacity(env.Topo.PortAt(8, 0, p).Down, 25)
		}
	})
	at(150*c4.Second, "NIC replaced", func() {
		for p := 0; p < 2; p++ {
			env.Net.SetLinkCapacity(env.Topo.PortAt(8, 0, p).Down, 200)
		}
	})
	at(180*c4.Second, "worker process on node 10 crashes", func() {
		comm.SetCrashed(10, true)
	})

	env.Eng.RunUntil(5 * c4.Minute)
	fleet.Stop()

	fmt.Printf("\n%d findings emitted; syndromes observed:\n", len(master.Events()))
	seen := map[c4.Syndrome]bool{}
	for _, ev := range master.Events() {
		seen[ev.Syndrome] = true
	}
	for _, s := range []c4.Syndrome{c4.NonCommSlow, c4.CommSlow, c4.NonCommHang, c4.CommHang} {
		fmt.Printf("  %-15v %v\n", s, seen[s])
	}
}
