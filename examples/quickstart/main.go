// Quickstart: build the paper's testbed, run a ring allreduce with plain
// ECMP and with C4P traffic engineering, and print the bus bandwidth of
// both — the smallest possible demonstration of why path planning matters
// on a dual-plane RoCE fabric.
package main

import (
	"fmt"
	"log"

	"c4"
)

func main() {
	run := func(kind c4.ProviderKind) float64 {
		// A 16-node × 8-GPU cluster, two leaf groups, 1:1 fat-tree.
		env, err := c4.OpenEnv(c4.EnvOptions{Spec: c4.MultiJobTestbed(8)})
		if err != nil {
			log.Fatal(err)
		}

		// 8 nodes alternating between leaf groups so every ring edge
		// crosses the spine layer.
		nodes := []int{0, 8, 1, 9, 2, 10, 3, 11}

		comm, err := c4.NewCommunicator(c4.CommConfig{
			Engine:   env.Eng,
			Net:      env.Net,
			Provider: env.NewProvider(kind, 1),
		}, nodes)
		if err != nil {
			log.Fatal(err)
		}

		var busbw float64
		comm.AllReduce(512<<20, nil, func(r c4.CollResult) {
			busbw = r.BusGbps
		})
		env.Eng.Run() // drain the event queue: the collective completes
		return busbw
	}

	base := run(c4.BaselineECMP)
	c4p := run(c4.C4PStatic)
	fmt.Printf("allreduce busbw, 64 GPUs, 512 MiB:\n")
	fmt.Printf("  ECMP baseline: %6.1f Gbps\n", base)
	fmt.Printf("  C4P planned:   %6.1f Gbps (%+.0f%%)\n", c4p, (c4p/base-1)*100)
}
