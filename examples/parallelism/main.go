// Parallelism: compile a Fig 14-style job's 3D-parallelism strategy into
// a training-iteration plan and watch what the strategy does to the
// fabric — the same GPT-175B, once as Fig 14's Job3 (TP8/PP8/DP2, GA=16,
// communication diluted to nothing) and once rebalanced toward data
// parallelism, with and without comm/compute overlap. The breakdown
// printed per run is the paper's whole Fig 14 lesson in three numbers:
// compute, pipeline bubble, exposed communication.
package main

import (
	"fmt"
	"log"

	"c4"
	"c4/internal/harness"
)

func main() {
	run := func(par c4.Parallelism, opts c4.PlanOptions) {
		env, err := c4.OpenEnv(c4.EnvOptions{Spec: c4.MultiJobTestbed(8)})
		if err != nil {
			log.Fatal(err)
		}
		// Spread placement: alternating leaf groups, so pipeline and ring
		// edges cross the spine layer (the paper's benchmark placement).
		nodes := harness.InterleavedNodes(par.PP * par.DP)
		spec := c4.JobSpec{
			Name:                 "fig14-style",
			Model:                c4.GPT175B,
			Par:                  par,
			Nodes:                nodes,
			ComputePerMicroBatch: 300 * c4.Millisecond,
			ComputeJitter:        0.02,
			SamplesPerIter:       128,
		}
		compiled, err := c4.CompilePlan(spec, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(compiled)

		j, err := c4.NewJob(c4.JobConfig{
			Engine: env.Eng, Net: env.Net,
			Provider:   env.NewProvider(c4.C4PStatic, 1),
			Rails:      []int{0},
			Spec:       spec,
			Plan:       opts,
			Rand:       c4.NewRand(1),
			QPsPerConn: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		var rep c4.JobReport
		j.Run(3, func(r c4.JobReport) { rep = r })
		env.Eng.Run()
		fmt.Printf("  iteration %v = compute %v + bubble %v + exposed comm %v (%.1f%%)\n",
			rep.AvgIter, rep.AvgCompute, rep.AvgBubble, rep.AvgExposed, rep.ExposedShare()*100)
		fmt.Printf("  throughput %.1f samples/s\n\n", rep.SamplesPerSec)
	}

	fmt.Println("== Fig 14 Job3: deep pipeline, GA=16 — nothing left to steer")
	run(c4.Parallelism{TP: 8, PP: 8, DP: 2, GA: 16}, c4.PlanOptions{})

	fmt.Println("== Rebalanced toward DP: the gradient volume surfaces")
	run(c4.Parallelism{TP: 8, PP: 2, DP: 8, GA: 4}, c4.PlanOptions{BucketBytes: 256 << 20})

	fmt.Println("== Same strategy with overlap: buckets hide inside backward")
	run(c4.Parallelism{TP: 8, PP: 2, DP: 8, GA: 4},
		c4.PlanOptions{BucketBytes: 256 << 20, Overlap: true})
}
