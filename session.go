package c4

// Session is the one construction path for end-to-end simulations: the
// same options-struct API builds, wires and drives a run whether the
// caller is cmd/c4sim (one-shot CLI), cmd/c4serve (long-running HTTP
// daemon) or a downstream Go program. A Session owns the whole lifecycle
// — engine, fabric, network, job, C4D/steering, streaming telemetry —
// inside Run, shares no process-global state with sibling sessions, and
// therefore produces byte-identical metrics and telemetry streams for
// equal specs and seeds regardless of what else runs in the process.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/harness"
	"c4/internal/job"
	"c4/internal/plan"
	"c4/internal/rca"
	"c4/internal/scenario"
	"c4/internal/sched"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/telemetry"
	"c4/internal/tenancy"
	"c4/internal/topo"
	"c4/internal/trace"
	"c4/internal/workload"
)

// Telemetry stream plumbing, re-exported so Session consumers can attach
// sinks without reaching into the internal tree.
type (
	// TelemetrySink receives the merged event-time-ordered record stream.
	TelemetrySink = telemetry.Sink
	// TelemetryRecord is one stream element.
	TelemetryRecord = telemetry.Record
	// TelemetryStreamWriter serializes the stream as JSONL (the
	// `c4sim -telemetry-out` / `c4watch` format).
	TelemetryStreamWriter = telemetry.StreamWriter
)

// NewTelemetryStreamWriter wraps a writer into a JSONL stream sink.
func NewTelemetryStreamWriter(w io.Writer) *TelemetryStreamWriter {
	return telemetry.NewStreamWriter(w)
}

// SessionSpec is the JSON-serializable description of one simulation
// session — the body of the server's POST /v1/sessions and the value the
// CLI flags compile into. Exactly one of Scenario, Job or Tenancy selects
// the mode.
type SessionSpec struct {
	// Seed roots every RNG stream of the run; equal specs with equal
	// seeds produce byte-identical results.
	Seed int64 `json:"seed"`
	// Scenario runs one registered experiment by name (see `c4sim -list`).
	Scenario string `json:"scenario,omitempty"`
	// Job runs the interactive training-job simulation: a distributed job
	// under C4D monitoring and C4P traffic engineering with an injectable
	// fault — or, when Job.Plan is set, a compiled 3D-parallelism plan.
	Job *SessionJob `json:"job,omitempty"`
	// Tenancy replays a multi-tenant arrival trace on a shared fabric.
	Tenancy *SessionTenancy `json:"tenancy,omitempty"`
}

// SessionJob configures the training-job mode (the historical
// `c4sim -job ...` flag set).
type SessionJob struct {
	// Model is the workload (gpt22b, gpt175b, llama7b, llama13b).
	// Default gpt22b.
	Model string `json:"model,omitempty"`
	// Provider is the path-control policy: baseline | c4p | c4p-dynamic.
	// Default c4p.
	Provider string `json:"provider,omitempty"`
	// Placement is topo (pack leaf groups) or spread (maximize spine
	// traffic). Default spread. Ignored in plan mode.
	Placement string `json:"placement,omitempty"`
	// Fault injects one fault: none | crash | straggler | nic.
	Fault string `json:"fault,omitempty"`
	// FaultAtS is the injection instant in virtual seconds (default 30).
	FaultAtS float64 `json:"fault_at_s,omitempty"`
	// Victim is the faulty node (default 6).
	Victim *int `json:"victim,omitempty"`
	// HorizonS is the virtual time to simulate, in seconds (default 900).
	HorizonS float64 `json:"horizon_s,omitempty"`
	// NoC4D disables C4D monitoring and recovery.
	NoC4D bool `json:"no_c4d,omitempty"`
	// Online attaches the streaming online detector and logs detections.
	Online bool `json:"online,omitempty"`

	// Plan switches to plan mode: compile and run this 3D-parallelism
	// strategy (e.g. "tp8/pp4/dp2/ga8") for Model on the 16-node testbed.
	Plan string `json:"plan,omitempty"`
	// PlanBucketMiB is the DP gradient bucket size (0 = one bucket).
	PlanBucketMiB float64 `json:"plan_bucket_mib,omitempty"`
	// PlanOverlap launches buckets inside the final backward pass.
	PlanOverlap bool `json:"plan_overlap,omitempty"`
	// PlanIters is the iteration count in plan mode (default 5).
	PlanIters int `json:"plan_iters,omitempty"`
}

// SessionTenancy configures the multi-tenant trace-replay mode.
type SessionTenancy struct {
	// Trace is the inline arrival trace, in the JSON format documented in
	// README.md (`{"events": [...]}`).
	Trace json.RawMessage `json:"trace"`
	// Policy places arriving jobs: packed | spread | random. Default packed.
	Policy string `json:"policy,omitempty"`
	// Provider is the steering arm: baseline | c4p | c4p-dynamic.
	// Default c4p.
	Provider string `json:"provider,omitempty"`
	// Spines per rail: 8 = 1:1 fabric, 4 = 2:1 oversubscription.
	// Default 8.
	Spines int `json:"spines,omitempty"`
	// HorizonS ends the replay, in virtual seconds (default 900).
	HorizonS float64 `json:"horizon_s,omitempty"`
}

// SessionOptions configures a Session beyond its spec.
type SessionOptions struct {
	// Spec selects and parameterizes the simulation.
	Spec SessionSpec
	// Log receives the human-readable timeline (the c4sim stdout
	// rendering). nil discards it.
	Log io.Writer
	// Workers bounds nested worker pools in scenario mode (campaign
	// trials); 0 means GOMAXPROCS.
	Workers int
}

// Session states.
const (
	sessionCreated = iota
	sessionRunning
	sessionFinished
	sessionClosed
)

// Session is one isolated simulation with a managed lifecycle: create
// (validates the spec), attach sinks, Run (builds every engine/fabric/
// RNG from the spec and drives the simulation under a context), read
// Metrics/Summary, Close. A Session runs at most once; the HTTP serving
// plane keeps a table of them, the CLIs create one and exit.
type Session struct {
	mu      sync.Mutex
	spec    SessionSpec
	log     io.Writer
	workers int

	// Resolved at NewSession so bad specs fail at creation time.
	scn scenario.Scenario // scenario mode
	jr  *jobResolved      // job + plan modes
	ten *tenancy.Config   // tenancy mode

	sinks   []TelemetrySink
	tracer  *trace.Tracer
	state   int
	metrics map[string]float64
	summary string
}

type jobResolved struct {
	model     workload.Model
	kind      harness.ProviderKind
	placement string
	fault     string
	faultAt   sim.Time
	victim    int
	horizon   sim.Time
	noC4D     bool
	online    bool

	plan      workload.Parallelism // plan mode when planSet
	planSet   bool
	planOpts  plan.Options
	planIters int
}

// parseProviderKind maps the shared CLI/spec provider names onto the
// harness policy kinds.
func parseProviderKind(s string) (harness.ProviderKind, error) {
	switch s {
	case "", "c4p":
		return harness.C4PStatic, nil
	case "baseline":
		return harness.Baseline, nil
	case "c4p-dynamic":
		return harness.C4PDynamic, nil
	}
	return 0, fmt.Errorf("unknown provider %q (want baseline | c4p | c4p-dynamic)", s)
}

// NewSession validates the spec and resolves it against the registries
// (models, scenarios, policies), so an invalid spec fails here — at
// POST /v1/sessions time on the server, at flag-parse time on the CLIs —
// rather than mid-run.
func NewSession(opts SessionOptions) (*Session, error) {
	s := &Session{spec: opts.Spec, log: opts.Log, workers: opts.Workers}
	if s.log == nil {
		s.log = io.Discard
	}
	modes := 0
	if opts.Spec.Scenario != "" {
		modes++
	}
	if opts.Spec.Job != nil {
		modes++
	}
	if opts.Spec.Tenancy != nil {
		modes++
	}
	if modes != 1 {
		return nil, fmt.Errorf("session: spec must set exactly one of scenario, job, tenancy (got %d)", modes)
	}
	switch {
	case opts.Spec.Scenario != "":
		scn, ok := scenario.Get(opts.Spec.Scenario)
		if !ok {
			return nil, fmt.Errorf("session: unknown scenario %q", opts.Spec.Scenario)
		}
		s.scn = scn
	case opts.Spec.Job != nil:
		jr, err := resolveJob(*opts.Spec.Job)
		if err != nil {
			return nil, err
		}
		s.jr = jr
	default:
		cfg, err := resolveTenancy(*opts.Spec.Tenancy)
		if err != nil {
			return nil, err
		}
		cfg.Seed = opts.Spec.Seed
		s.ten = cfg
	}
	return s, nil
}

func resolveJob(js SessionJob) (*jobResolved, error) {
	jr := &jobResolved{}
	name := js.Model
	if name == "" {
		name = "gpt22b"
	}
	model, ok := workload.ModelByName(name)
	if !ok {
		return nil, fmt.Errorf("session: unknown job model %q (have: %s)",
			name, joinNames(workload.ModelNames()))
	}
	jr.model = model
	kind, err := parseProviderKind(js.Provider)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	jr.kind = kind

	jr.horizon = sim.FromSeconds(js.HorizonS)
	if js.HorizonS <= 0 {
		jr.horizon = 15 * sim.Minute
	}

	if js.Plan != "" {
		par, err := workload.ParseParallelism(js.Plan)
		if err != nil {
			return nil, fmt.Errorf("session: %w", err)
		}
		if world := par.PP * par.DP; world > 16 {
			return nil, fmt.Errorf("session: strategy %v needs %d nodes, testbed has 16", par, world)
		}
		jr.plan, jr.planSet = par, true
		jr.planOpts = plan.Options{BucketBytes: js.PlanBucketMiB * (1 << 20), Overlap: js.PlanOverlap}
		jr.planIters = js.PlanIters
		if jr.planIters <= 0 {
			jr.planIters = 5
		}
		return jr, nil
	}

	jr.placement = js.Placement
	if jr.placement == "" {
		jr.placement = "spread"
	}
	if jr.placement != "topo" && jr.placement != "spread" {
		return nil, fmt.Errorf("session: unknown placement %q (want topo | spread)", js.Placement)
	}
	jr.fault = js.Fault
	if jr.fault == "" {
		jr.fault = "none"
	}
	switch jr.fault {
	case "none", "crash", "straggler", "nic":
	default:
		return nil, fmt.Errorf("session: unknown fault %q (want none | crash | straggler | nic)", js.Fault)
	}
	jr.faultAt = sim.FromSeconds(js.FaultAtS)
	if js.FaultAtS <= 0 {
		jr.faultAt = 30 * sim.Second
	}
	jr.victim = 6
	if js.Victim != nil {
		jr.victim = *js.Victim
	}
	jr.noC4D = js.NoC4D
	jr.online = js.Online
	return jr, nil
}

func resolveTenancy(ts SessionTenancy) (*tenancy.Config, error) {
	trace, err := tenancy.ParseTrace(ts.Trace)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	polName := ts.Policy
	if polName == "" {
		polName = "packed"
	}
	pol, err := sched.ParsePolicy(polName)
	if err != nil {
		return nil, fmt.Errorf("session: %w", err)
	}
	var arm tenancy.Arm
	switch ts.Provider {
	case "baseline":
		arm = tenancy.ArmPinnedECMP
	case "", "c4p":
		arm = tenancy.ArmC4PStatic
	case "c4p-dynamic":
		arm = tenancy.ArmC4P
	default:
		return nil, fmt.Errorf("session: unknown provider %q (want baseline | c4p | c4p-dynamic)", ts.Provider)
	}
	horizon := sim.FromSeconds(ts.HorizonS)
	if ts.HorizonS <= 0 {
		horizon = 15 * sim.Minute
	}
	return &tenancy.Config{
		Spines:  ts.Spines,
		Policy:  pol,
		Arm:     arm,
		Horizon: horizon,
		Trace:   trace,
	}, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Spec returns the session's spec.
func (s *Session) Spec() SessionSpec { return s.spec }

// AttachSink subscribes a telemetry sink to the session's merged record
// stream (job and plan modes; scenario and tenancy runs produce no
// stream). Every attached sink sees the identical, deterministic record
// sequence. It must be called before Run and panics afterwards — a sink
// attached mid-run would see a torn stream.
func (s *Session) AttachSink(sink TelemetrySink) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sessionCreated {
		panic("c4: Session.AttachSink after Run")
	}
	if sink != nil {
		s.sinks = append(s.sinks, sink)
	}
}

// AttachTracer subscribes a sim-time span tracer to the session (job and
// plan modes; scenario and tenancy runs record no spans). Run binds the
// tracer to the run's engine, so span IDs draw from that engine's own
// deterministic ID sequence and the exported trace is byte-identical no
// matter what else runs in the process. Like AttachSink it must be
// called before Run and panics afterwards.
func (s *Session) AttachTracer(tr *Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != sessionCreated {
		panic("c4: Session.AttachTracer after Run")
	}
	if tr != nil {
		s.tracer = tr
	}
}

// Metrics returns the finished run's deterministic key numbers (nil
// before Run completes). The map is a copy; callers may mutate it.
func (s *Session) Metrics() map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.metrics == nil {
		return nil
	}
	out := make(map[string]float64, len(s.metrics))
	for k, v := range s.metrics {
		out[k] = v
	}
	return out
}

// Summary returns a one-line human-readable outcome ("" before Run
// completes).
func (s *Session) Summary() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.summary
}

// Close marks the session unusable. It is idempotent and safe after a
// failed or cancelled Run; every simulation resource is scoped to Run
// itself, so there is nothing else to release.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == sessionRunning {
		return fmt.Errorf("session: Close while running (cancel the Run context first)")
	}
	s.state = sessionClosed
	s.sinks = nil
	return nil
}

// Run builds the simulation from the spec and drives it to completion,
// or until ctx is cancelled (the engine stops between event instants and
// the cancellation error is returned). A Session runs at most once.
func (s *Session) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	switch s.state {
	case sessionRunning:
		s.mu.Unlock()
		return fmt.Errorf("session: already running")
	case sessionFinished, sessionClosed:
		s.mu.Unlock()
		return fmt.Errorf("session: already ran (sessions run at most once)")
	}
	s.state = sessionRunning
	sinks := s.sinks
	s.mu.Unlock()

	var metrics map[string]float64
	var summary string
	var err error
	switch {
	case s.scn.Name != "":
		metrics, summary, err = s.runScenario(ctx)
	case s.jr != nil && s.jr.planSet:
		metrics, summary, err = s.runPlanned(ctx, sinks)
	case s.jr != nil:
		metrics, summary, err = s.runJob(ctx, sinks)
	default:
		metrics, summary, err = s.runTenancy(ctx)
	}

	s.mu.Lock()
	s.state = sessionFinished
	s.metrics = metrics
	s.summary = summary
	s.mu.Unlock()
	return err
}

// runScenario executes one registered experiment through the shared
// worker-pool runner, so the nested-pool throttling and panic capture
// match a `c4sim -scenario` run exactly.
func (s *Session) runScenario(ctx context.Context) (map[string]float64, string, error) {
	reports := (&scenario.Runner{Workers: s.workers}).Run(ctx, s.spec.Seed, []scenario.Scenario{s.scn})
	rep := reports[0]
	scenario.FprintReport(s.log, rep)
	if rep.Err != nil {
		return nil, "", rep.Err
	}
	metrics := map[string]float64{"sim_events": float64(rep.Events)}
	if s.scn.Metrics != nil {
		for k, v := range s.scn.Metrics(rep.Result) {
			metrics[k] = v
		}
	}
	summary := fmt.Sprintf("scenario %s ok", s.scn.Name)
	if s.scn.Summarize != nil {
		summary = s.scn.Summarize(rep.Result)
	}
	if rep.ShapeErr != nil {
		metrics["shape_failed"] = 1
		summary = fmt.Sprintf("scenario %s SHAPE FAIL: %v", s.scn.Name, rep.ShapeErr)
	}
	return metrics, summary, nil
}

// runTenancy replays the arrival trace. The multi-tenant engine drives
// its own event loop internally, so cancellation is checked only at the
// start; replays are bounded by their horizon.
func (s *Session) runTenancy(ctx context.Context) (map[string]float64, string, error) {
	if err := ctx.Err(); err != nil {
		return nil, "", err
	}
	res := tenancy.Run(*s.ten)
	fmt.Fprint(s.log, res)
	metrics := map[string]float64{
		"admitted":     float64(res.Admitted),
		"completed":    float64(res.Completed),
		"rejected":     float64(res.Rejected),
		"agg_goodput":  res.AggGoodput,
		"jain":         res.Jain,
		"mean_stretch": res.MeanStretch,
		"sim_events":   float64(res.Fired),
	}
	summary := fmt.Sprintf("%d tenants admitted, %d completed, %.1f samples/s aggregate, Jain %.3f",
		res.Admitted, res.Completed, res.AggGoodput, res.Jain)
	return metrics, summary, nil
}

// newPipeline wires the attached sinks (plus the optional online
// detector) into a streaming telemetry pipeline on the job's engine, or
// returns nil when nothing consumes the stream.
func (s *Session) newPipeline(env *harness.Env, sinks []TelemetrySink, online bool, logf func(string, ...any)) *telemetry.Pipeline {
	var consumers []telemetry.Sink
	consumers = append(consumers, sinks...)
	if online {
		det := telemetry.NewOnlineDetector(env.Eng, telemetry.DetectorConfig{})
		det.Subscribe(func(d c4d.Detection) {
			logf("ONLINE: %v", d)
		})
		consumers = append(consumers, det)
	}
	if len(consumers) == 0 {
		return nil
	}
	return telemetry.NewPipeline(env.Eng, telemetry.PipelineConfig{}, consumers...)
}

// runJob is the interactive training-job simulation: the full detect →
// isolate → restart loop under an injectable fault, ported verbatim from
// the historical cmd/c4sim wiring (which now calls through here).
func (s *Session) runJob(ctx context.Context, sinks []TelemetrySink) (map[string]float64, string, error) {
	jr := s.jr
	spec := topo.MultiJobTestbed(8)
	spec.Nodes = 24 // 16 primaries + 8 spares
	env := harness.NewEnv(spec)
	if s.tracer != nil {
		s.tracer.Bind(env.Eng)
		env.Net.Trace = s.tracer
	}
	machines := cluster.NewCluster(16, 8, 8)

	var nodes []int
	switch jr.placement {
	case "topo":
		// Topology-aware placement (§III-B): pack leaf groups so ring
		// edges avoid the spine layer entirely where possible.
		sc := sched.New(env.Topo)
		alloc, err := sc.Allocate(16)
		if err != nil {
			return nil, "", err
		}
		nodes = sched.RingOrder(env.Topo, alloc)
	default: // "spread"
		// Worst-case placement: every ring edge crosses the spines.
		for i := 0; i < 16; i++ {
			if i%2 == 0 {
				nodes = append(nodes, i/2)
			} else {
				nodes = append(nodes, 8+i/2)
			}
		}
	}

	specs := workload.Fig14Jobs(nodes)
	var jobSpec workload.JobSpec
	switch jr.model.Name {
	case workload.GPT22B.Name:
		jobSpec = specs[0]
	case workload.Llama7B.Name:
		jobSpec = specs[1]
	case workload.GPT175B.Name:
		jobSpec = specs[2]
	default:
		// Models outside Fig 14 (Llama-13B) run the Job1-style TP8×DP16
		// configuration with their own gradient volume.
		jobSpec = specs[0]
		jobSpec.Name, jobSpec.Model = jr.model.Name, jr.model
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(s.log, "[%12v] ", env.Eng.Now())
		fmt.Fprintf(s.log, format+"\n", args...)
	}

	analyzer := rca.NewAnalyzer(0)
	var fleet *c4d.Fleet
	var master *c4d.Master
	jobCfg := job.Config{
		Engine: env.Eng, Net: env.Net,
		Provider:   env.NewProvider(jr.kind, s.spec.Seed),
		Rails:      []int{0},
		Spec:       jobSpec,
		Rand:       sim.NewRand(s.spec.Seed),
		Context:    ctx,
		QPsPerConn: 4,
	}
	if !jr.noC4D {
		master = c4d.NewMaster(c4d.Config{Trace: s.tracer})
		fleet = c4d.NewFleet(env.Eng, master)
		jobCfg.Sink = fleet
	}

	// Streaming telemetry plane: attached sinks (JSONL export, the SSE
	// hub) and/or the online detector racing batch C4D, all fed from the
	// same instrumentation point.
	pipe := s.newPipeline(env, sinks, jr.online, logf)
	if pipe != nil {
		jobCfg.Sink = accl.Fanout(jobCfg.Sink, pipe)
	}
	j, err := job.New(jobCfg)
	if err != nil {
		return nil, "", err
	}
	j.OnIteration(func(i int, d sim.Time) {
		if i%20 == 0 {
			logf("iteration %d done in %v (%.1f samples/sec)",
				i, d, jobSpec.SamplesPerIter/d.Seconds())
		}
	})

	if master != nil {
		nextSpare := 16
		svc := steering.NewService(steering.Config{
			Engine: env.Eng, Cluster: machines,
			IsolationDelay: 30 * sim.Second,
			RestartDelay:   3 * sim.Minute,
			Trace:          s.tracer,
			Isolate: func(node int) {
				logf("steering: isolating node %d, stopping job", node)
				j.Stop()
			},
			Restart: func(node, repl int) {
				spare := nextSpare
				nextSpare++
				logf("steering: replacing node %d with spare %d, restarting job", node, spare)
				if err := j.ReplaceNode(node, spare); err != nil {
					logf("steering: replace failed: %v", err)
					return
				}
				j.Run(1_000_000, nil)
			},
		})
		master.Subscribe(func(ev c4d.Event) {
			logf("C4D: %v", ev)
			rep := analyzer.Classify(ev)
			top := rep.Top()
			logf("RCA: most likely %v (%.0f%% confidence)", top.Kind, top.Confidence*100)
			if tr := s.tracer; tr.Enabled() {
				// Diagnosis hangs off the detection that triggered it.
				tr.Event(tr.Mark("detect"), "rca", fmt.Sprintf("%v", top.Kind)).
					Annotate("confidence", fmt.Sprintf("%.2f", top.Confidence))
			}
			if ev.Syndrome == c4d.CommHang || ev.Syndrome == c4d.NonCommHang {
				svc.Handle(ev)
			}
		})
	}

	j.Run(1_000_000, nil)

	if jr.fault != "none" {
		env.Eng.Schedule(jr.faultAt, func() {
			if tr := s.tracer; tr.Enabled() {
				// The session's injected fault persists until recovery, so
				// its span stays open (exporters draw it to the horizon);
				// the "fault" mark parents detect/steer spans under it.
				sp := tr.Start(nil, "fault", jr.fault)
				sp.Annotate("node", fmt.Sprintf("%d", jr.victim))
				tr.SetMark("fault", sp)
			}
			switch jr.fault {
			case "crash":
				logf("FAULT: crashing worker process on node %d", jr.victim)
				// The server monitor sees the GPU Xid before anyone else.
				analyzer.Observe(rca.Telemetry{Time: env.Eng.Now(), Kind: rca.TelemetryXidError, Node: jr.victim})
				j.SetCrashed(jr.victim, true)
			case "straggler":
				logf("FAULT: node %d becomes a straggler (+400ms/iteration)", jr.victim)
				j.SetStraggler(jr.victim, 400*sim.Millisecond)
			case "nic":
				logf("FAULT: node %d loses both NIC ports on rail 0", jr.victim)
				analyzer.Observe(rca.Telemetry{Time: env.Eng.Now(), Kind: rca.TelemetryNICDown, Node: jr.victim})
				for p := 0; p < topo.Planes; p++ {
					port := env.Topo.PortAt(jr.victim, 0, p)
					env.Net.SetLinkUp(port.Up, false)
					env.Net.SetLinkUp(port.Down, false)
				}
			}
		})
	}

	runErr := runEngineTo(ctx, env.Eng, jr.horizon)
	if fleet != nil {
		fleet.Stop()
	}
	var streamed, dropped uint64
	if pipe != nil {
		pipe.Stop()
		streamed, dropped = pipe.Records(), pipe.Dropped()
	}
	if runErr != nil {
		return nil, "", runErr
	}

	iters := j.IterTimes()
	fmt.Fprintln(s.log)
	logf("simulation finished: %d iterations completed", len(iters))
	metrics := map[string]float64{
		"iterations": float64(len(iters)),
		"sim_events": float64(env.Eng.Fired()),
	}
	summary := fmt.Sprintf("%d iterations completed", len(iters))
	if len(iters) > 0 {
		var sum sim.Time
		for _, d := range iters {
			sum += d
		}
		avg := sum / sim.Time(len(iters))
		logf("average iteration: %v (%.1f samples/sec)", avg, jobSpec.SamplesPerIter/avg.Seconds())
		metrics["avg_iter_s"] = avg.Seconds()
		metrics["samples_per_sec"] = jobSpec.SamplesPerIter / avg.Seconds()
		summary = fmt.Sprintf("%d iterations, avg %v (%.1f samples/sec)",
			len(iters), avg, jobSpec.SamplesPerIter/avg.Seconds())
	}
	if master != nil {
		logf("C4D emitted %d events", len(master.Events()))
		metrics["c4d_events"] = float64(len(master.Events()))
	}
	if pipe != nil {
		logf("telemetry: %d records streamed (%d dropped)", streamed, dropped)
		metrics["telemetry_records"] = float64(streamed)
		metrics["telemetry_dropped"] = float64(dropped)
	}
	return metrics, summary, nil
}

// runPlanned compiles one 3D-parallelism strategy into a training-
// iteration plan, executes it on the 16-node testbed under the chosen
// provider, and reports the compiled schedule plus the measured
// iteration breakdown (the historical `c4sim -plan` path).
func (s *Session) runPlanned(ctx context.Context, sinks []TelemetrySink) (map[string]float64, string, error) {
	jr := s.jr
	world := jr.plan.PP * jr.plan.DP
	// Spread placement: alternating leaf groups, so ring and pipeline
	// edges cross the spine layer — the same placement the plan/*
	// scenarios sweep.
	nodes := harness.InterleavedNodes(world)
	env := harness.NewEnv(topo.MultiJobTestbed(8))
	if s.tracer != nil {
		s.tracer.Bind(env.Eng)
		env.Net.Trace = s.tracer
	}
	spec := workload.JobSpec{
		Name:                 jr.model.Name,
		Model:                jr.model,
		Par:                  jr.plan,
		Nodes:                nodes,
		ComputePerMicroBatch: 550 * sim.Millisecond,
		ComputeJitter:        0.02,
		SamplesPerIter:       64,
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(s.log, "[%12v] ", env.Eng.Now())
		fmt.Fprintf(s.log, format+"\n", args...)
	}
	jobCfg := job.Config{
		Engine: env.Eng, Net: env.Net,
		Provider:   env.NewProvider(jr.kind, s.spec.Seed),
		Rails:      []int{0},
		Spec:       spec,
		Plan:       jr.planOpts,
		Rand:       sim.NewRand(s.spec.Seed),
		Context:    ctx,
		QPsPerConn: 8,
	}
	pipe := s.newPipeline(env, sinks, jr.online, logf)
	if pipe != nil {
		jobCfg.Sink = accl.Fanout(nil, pipe)
	}
	j, err := job.New(jobCfg)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintln(s.log, j.Plan())
	j.OnIteration(func(i int, d sim.Time) {
		fmt.Fprintf(s.log, "iteration %2d: %v\n", i, d)
	})
	var rep job.Report
	j.Run(jr.planIters, func(r job.Report) { rep = r })
	runErr := drainEngine(ctx, env.Eng)
	if pipe != nil {
		pipe.Stop()
	}
	if runErr != nil {
		return nil, "", runErr
	}
	fmt.Fprintf(s.log, "\n%d iterations under %v:\n", rep.Iters, jr.kind)
	fmt.Fprintf(s.log, "  avg iteration  %v (%.1f samples/s)\n", rep.AvgIter, rep.SamplesPerSec)
	fmt.Fprintf(s.log, "  compute        %v\n", rep.AvgCompute)
	fmt.Fprintf(s.log, "  pipeline bubble %v\n", rep.AvgBubble)
	fmt.Fprintf(s.log, "  exposed comm   %v (%.1f%% of the iteration)\n", rep.AvgExposed, rep.ExposedShare()*100)
	metrics := map[string]float64{
		"iterations":      float64(rep.Iters),
		"avg_iter_s":      rep.AvgIter.Seconds(),
		"samples_per_sec": rep.SamplesPerSec,
		"compute_s":       rep.AvgCompute.Seconds(),
		"bubble_s":        rep.AvgBubble.Seconds(),
		"exposed_s":       rep.AvgExposed.Seconds(),
		"exposed_share":   rep.ExposedShare(),
		"sim_events":      float64(env.Eng.Fired()),
	}
	if pipe != nil {
		metrics["telemetry_records"] = float64(pipe.Records())
		metrics["telemetry_dropped"] = float64(pipe.Dropped())
	}
	summary := fmt.Sprintf("%v: avg iteration %v (%.1f samples/s), exposed comm %.1f%%",
		jr.plan, rep.AvgIter, rep.SamplesPerSec, rep.ExposedShare()*100)
	return metrics, summary, nil
}

// runEngineTo drives the engine to the deadline exactly like
// Engine.RunUntil, but checks ctx between event instants so a server can
// cancel a runaway session. Chunking by instant cannot change results:
// the engine fires the identical event sequence either way.
func runEngineTo(ctx context.Context, eng *sim.Engine, deadline sim.Time) error {
	for i := 0; ; i++ {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		next := eng.NextEventAt()
		if next > deadline {
			break
		}
		eng.RunUntil(next)
	}
	eng.RunUntil(deadline) // advance the clock to exactly the deadline
	return ctx.Err()
}

// drainEngine runs the queue dry like Engine.Run, checking ctx between
// event instants.
func drainEngine(ctx context.Context, eng *sim.Engine) error {
	for i := 0; ; i++ {
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		next := eng.NextEventAt()
		if next == sim.MaxTime {
			return ctx.Err()
		}
		eng.RunUntil(next)
	}
}
