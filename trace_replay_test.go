package c4_test

// Determinism gate for the tracing plane: the exported Chrome trace of a
// session must be byte-identical whether the session runs alone or next
// to concurrent sibling sessions. Span IDs come from the session
// engine's own ID sequence and timestamps are sim.Time, so nothing about
// process scheduling may leak into the file.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"sync"
	"testing"

	"c4"
)

// traceHash runs one session with a tracer attached and returns the
// SHA-256 of its exported trace.
func traceHash(t *testing.T, spec c4.SessionSpec) [sha256.Size]byte {
	t.Helper()
	sess, err := c4.NewSession(c4.SessionOptions{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	tr := c4.NewTracer()
	sess.AttachTracer(tr)
	if err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c4.WriteTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("trace is empty")
	}
	return sha256.Sum256(buf.Bytes())
}

// replaySpecs are the two traced modes: a planned 3D-parallelism run and
// a job run exercising the fault → detect → steer causal chain.
func replaySpecs() map[string]c4.SessionSpec {
	return map[string]c4.SessionSpec{
		"plan": {
			Seed: 7,
			Job:  &c4.SessionJob{Model: "gpt22b", Plan: "tp8/pp2/dp2/ga2", PlanIters: 2},
		},
		"job-crash": {
			Seed: 7,
			Job:  &c4.SessionJob{Model: "gpt22b", Fault: "crash", HorizonS: 120},
		},
	}
}

func TestTraceSerialParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full sessions")
	}
	for name, spec := range replaySpecs() {
		t.Run(name, func(t *testing.T) {
			serial := traceHash(t, spec)

			// Re-run the same spec three times concurrently; every copy
			// must export the identical bytes.
			const copies = 3
			hashes := make([][sha256.Size]byte, copies)
			var wg sync.WaitGroup
			for i := 0; i < copies; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					hashes[i] = traceHash(t, spec)
				}(i)
			}
			wg.Wait()
			for i, h := range hashes {
				if h != serial {
					t.Errorf("concurrent run %d exported a different trace than the serial run", i)
				}
			}
		})
	}
}
