// Command c4watch replays a telemetry JSONL stream (written by
// `c4sim -telemetry-out` or any telemetry.StreamWriter) through the
// streaming online detector for offline triage: the same detections the
// live pipeline would have fired, at the same virtual instants, plus
// stream statistics.
//
// Examples:
//
//	c4watch -stream run.jsonl             # replay, print detections
//	c4watch -stream run.jsonl -summary    # add per-kind/bandwidth stats
//	c4watch -stream run.jsonl -tail 60s   # let trailing hang timeouts ripen
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"c4/internal/sim"
	"c4/internal/telemetry"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }

// run is the testable entry point.
func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("c4watch", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		stream  = fs.String("stream", "", "telemetry JSONL stream file (required)")
		tail    = fs.Duration("tail", 0, "virtual time to run past the last record so trailing hang timeouts can ripen (0 = an ended capture is not a hang)")
		hangT   = fs.Duration("hang-timeout", 30*time.Second, "silence span before a hang verdict")
		kappa   = fs.Float64("kappa", 2, "slowdown multiple considered anomalous")
		summary = fs.Bool("summary", false, "print stream statistics after the detections")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *stream == "" {
		fmt.Fprintln(out, "c4watch: -stream FILE is required")
		return 2
	}
	f, err := os.Open(*stream)
	if err != nil {
		fmt.Fprintf(out, "c4watch: %v\n", err)
		return 2
	}
	defer f.Close()
	records, err := telemetry.ReadStream(f)
	if err != nil {
		fmt.Fprintf(out, "c4watch: %v\n", err)
		return 2
	}
	if len(records) == 0 {
		fmt.Fprintln(out, "c4watch: stream is empty")
		return 1
	}

	det := telemetry.Replay(records, telemetry.DetectorConfig{
		HangTimeout: sim.FromDuration(*hangT),
		Kappa:       *kappa,
	}, sim.FromDuration(*tail))

	span := records[len(records)-1].Time - records[0].Time
	fmt.Fprintf(out, "replayed %d records spanning %v\n", len(records), span)
	dets := det.Detections()
	if len(dets) == 0 {
		fmt.Fprintln(out, "no detections")
	}
	for _, d := range dets {
		fmt.Fprintf(out, "DETECT %v\n", d)
	}
	if *summary {
		printSummary(out, records)
	}
	return 0
}

// printSummary renders per-kind counts, participating nodes, and a
// bandwidth profile of the transport records (via the same streaming
// quantile sketch the detector thresholds against).
func printSummary(out io.Writer, records []telemetry.Record) {
	kinds := map[telemetry.Kind]int{}
	nodes := map[int]bool{}
	comms := map[int]bool{}
	sketch := telemetry.NewQuantileSketch(0.01, 10000, 256)
	var waitTotal sim.Time
	for _, r := range records {
		kinds[r.Kind]++
		comms[r.Comm] = true
		if r.Node >= 0 {
			nodes[r.Node] = true
		}
		switch {
		case r.Kind == telemetry.KindMsg && r.Msg != nil:
			if dur := r.Msg.Duration(); dur > 0 {
				sketch.Observe(r.Msg.Bytes * 8 / dur.Seconds() / 1e9)
			}
		case r.Kind == telemetry.KindWait && r.Wait != nil:
			waitTotal += r.Wait.Dur
		}
	}
	fmt.Fprintf(out, "---\nstream summary: %d nodes, %d communicators\n", len(nodes), len(comms))
	for _, k := range []telemetry.Kind{
		telemetry.KindCommCreate, telemetry.KindCommClose,
		telemetry.KindColl, telemetry.KindMsg, telemetry.KindWait,
	} {
		if kinds[k] > 0 {
			fmt.Fprintf(out, "  %-12s %d\n", k, kinds[k])
		}
	}
	if sketch.Count() > 0 {
		fmt.Fprintf(out, "  msg bandwidth p10/p50/p90: %.1f / %.1f / %.1f Gbps\n",
			sketch.Quantile(0.1), sketch.Quantile(0.5), sketch.Quantile(0.9))
	}
	if waitTotal > 0 {
		fmt.Fprintf(out, "  receiver-driven wait total: %v\n", waitTotal)
	}
}
