package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c4/internal/accl"
	"c4/internal/sim"
	"c4/internal/telemetry"
)

// writeStream captures a tiny hand-built stream: one communicator, a
// healthy warmup, then one pair collapsing to 1/8 bandwidth — enough for
// the replayed detector to fire a comm-slow detection.
func writeStream(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := telemetry.NewStreamWriter(f)
	w.Observe(telemetry.Record{Time: 0, Node: -1, Kind: telemetry.KindCommCreate,
		Comm: 1, Nodes: []int{0, 1, 2, 3}})
	at := sim.Second
	emit := func(src, dst int, dur sim.Time) {
		w.Observe(telemetry.RecordOfMsg(accl.MsgEvent{
			Comm: 1, Seq: 1, SrcNode: src, DstNode: dst,
			Bytes: 1e9 / 8, Start: at, End: at + dur,
		}))
		at += dur
	}
	// Healthy: every ring edge moves 1 Gbit in 10 ms = 100 Gbps.
	for round := 0; round < 10; round++ {
		for n := 0; n < 4; n++ {
			emit(n, (n+1)%4, 10*sim.Millisecond)
		}
	}
	// Pair 1->2 degrades 8x.
	for round := 0; round < 10; round++ {
		emit(1, 2, 80*sim.Millisecond)
		emit(0, 1, 10*sim.Millisecond)
		emit(2, 3, 10*sim.Millisecond)
		emit(3, 0, 10*sim.Millisecond)
	}
	w.Observe(telemetry.Record{Time: at, Node: -1, Kind: telemetry.KindCommClose, Comm: 1})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplaysAndDetects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeStream(t, path)
	var out bytes.Buffer
	if code := run([]string{"-stream", path, "-summary"}, &out); code != 0 {
		t.Fatalf("run = %d\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "DETECT") || !strings.Contains(got, "comm-slow") {
		t.Fatalf("no comm-slow detection in output:\n%s", got)
	}
	if !strings.Contains(got, "stream summary") || !strings.Contains(got, "msg bandwidth") {
		t.Fatalf("summary missing:\n%s", got)
	}
}

func TestRunBadInputs(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out); code != 2 {
		t.Fatalf("missing -stream: code %d, want 2", code)
	}
	if code := run([]string{"-stream", "/no/such/file.jsonl"}, &out); code != 2 {
		t.Fatalf("missing file: code %d, want 2", code)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-stream", empty}, &out); code != 1 {
		t.Fatalf("empty stream: code %d, want 1", code)
	}
	garbage := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(garbage, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-stream", garbage}, &out); code != 2 {
		t.Fatalf("garbage stream: code %d, want 2", code)
	}
}

func TestRunQuietStream(t *testing.T) {
	// A healthy stream replays without detections.
	path := filepath.Join(t.TempDir(), "quiet.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := telemetry.NewStreamWriter(f)
	w.Observe(telemetry.Record{Time: 0, Node: -1, Kind: telemetry.KindCommCreate,
		Comm: 1, Nodes: []int{0, 1}})
	for i := 0; i < 50; i++ {
		w.Observe(telemetry.RecordOfMsg(accl.MsgEvent{
			Comm: 1, Seq: 1, SrcNode: i % 2, DstNode: (i + 1) % 2,
			Bytes: 1e9 / 8, Start: sim.Time(i) * sim.Second, End: sim.Time(i)*sim.Second + 10*sim.Millisecond,
		}))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out bytes.Buffer
	if code := run([]string{"-stream", path}, &out); code != 0 {
		t.Fatalf("run = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no detections") {
		t.Fatalf("quiet stream output:\n%s", out.String())
	}
}
