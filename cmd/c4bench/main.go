// Command c4bench runs the C4 evaluation harness through the scenario
// registry: any selection of the paper's tables, figures, ablations and
// pipelines, executed concurrently on a worker pool, printed with shape-
// check verdicts and per-scenario wall-time/event statistics.
//
// Examples:
//
//	c4bench                      # every registered scenario
//	c4bench -list                # enumerate scenarios
//	c4bench -only fig12,fig13    # a selection
//	c4bench -only 'ablation-*'   # glob selection
//	c4bench -md > EXPERIMENTS.md # paper-vs-measured markdown table
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	_ "c4/internal/harness" // registers every scenario
	"c4/internal/scenario"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "simulation seed")
		only    = flag.String("only", "all", "comma-separated scenario names (globs allowed)")
		workers = flag.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS)")
		list    = flag.Bool("list", false, "list registered scenarios and exit")
		md      = flag.Bool("md", false, "emit the EXPERIMENTS.md paper-vs-measured table")
	)
	flag.Parse()

	if *list {
		scenario.FprintList(os.Stdout, scenario.All())
		return
	}

	scns, err := scenario.Select(*only)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4bench: %v\n", err)
		os.Exit(2)
	}
	runner := &scenario.Runner{Workers: *workers}
	reports := runner.Run(*seed, scns)

	failures := 0
	if *md {
		failures = writeMarkdown(os.Stdout, scns, reports, *seed)
	} else {
		for _, rep := range reports {
			fmt.Println("==============================================")
			if scenario.FprintReport(os.Stdout, rep) {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "c4bench: %d scenario(s) failed\n", failures)
		os.Exit(1)
	}
}

// writeMarkdown renders the paper-vs-measured table EXPERIMENTS.md holds,
// returning how many scenarios failed their run or shape check.
func writeMarkdown(w *os.File, scns []scenario.Scenario, reports []scenario.Report, seed int64) int {
	fmt.Fprintln(w, "# EXPERIMENTS — paper vs measured")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every table and figure of the C4 paper (Dong et al., HPCA 2025,")
	fmt.Fprintln(w, "arXiv:2406.04594), reproduced on the simulated substrate through the")
	fmt.Fprintln(w, "scenario registry. Regenerate with `make experiments` (or")
	fmt.Fprintf(w, "`go run ./cmd/c4bench -md -seed %d > EXPERIMENTS.md`). Each scenario\n", seed)
	fmt.Fprintln(w, "is runnable by name: `go run ./cmd/c4bench -only <scenario>`.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| scenario | group | paper says | measured (seed %d) | shape check |\n", seed)
	fmt.Fprintln(w, "|---|---|---|---|---|")
	failures := 0
	for i, rep := range reports {
		s := scns[i]
		measured, verdict := "", "OK"
		switch {
		case rep.Err != nil:
			measured, verdict = rep.Err.Error(), "FAIL"
		case s.Summarize != nil:
			measured = s.Summarize(rep.Result)
		default:
			measured = "(no summarizer)"
		}
		if rep.Err == nil && rep.ShapeErr != nil {
			verdict = "FAIL: " + rep.ShapeErr.Error()
		}
		if verdict != "OK" {
			failures++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			s.Name, s.Group, escape(s.Paper), escape(measured), escape(verdict))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario parameters:")
	fmt.Fprintln(w)
	for i, s := range scns {
		if len(s.Params) == 0 {
			continue
		}
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for j, k := range keys {
			parts[j] = k + "=" + s.Params[k]
		}
		// Wall time is host-dependent; only the deterministic event count
		// goes into the committed file, so regeneration is byte-stable.
		fmt.Fprintf(w, "- `%s`: %s (%d events)\n",
			s.Name, strings.Join(parts, ", "), reports[i].Events)
	}
	return failures
}

func escape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "|", "\\|"), "\n", " ")
}
