// Command c4bench runs the full C4 evaluation harness: every table and
// figure of the paper, printed with shape-check verdicts.
package main

import (
	"flag"
	"fmt"

	"c4/internal/harness"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "run a single experiment (tableI, tableIII, fig3, fig9, fig10, fig11, fig12, fig13, fig14)")
	flag.Parse()

	type exp struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	check := func(s interface {
		fmt.Stringer
		CheckShape() error
	}) (fmt.Stringer, error) {
		return s, s.CheckShape()
	}
	exps := []exp{
		{"tableI", func() (fmt.Stringer, error) { return check(harness.RunTableI(*seed)) }},
		{"tableIII", func() (fmt.Stringer, error) { return check(harness.RunTableIII(*seed)) }},
		{"fig3", func() (fmt.Stringer, error) { return check(harness.RunFig3(*seed)) }},
		{"fig9", func() (fmt.Stringer, error) { return check(harness.RunFig9(*seed)) }},
		{"fig10a", func() (fmt.Stringer, error) { return check(harness.RunFig10(*seed, 8)) }},
		{"fig10b", func() (fmt.Stringer, error) { return check(harness.RunFig10(*seed, 4)) }},
		{"fig11", func() (fmt.Stringer, error) { return check(harness.RunFig11(*seed)) }},
		{"fig12", func() (fmt.Stringer, error) { return check(harness.RunFig12(*seed)) }},
		{"fig13", func() (fmt.Stringer, error) { return check(harness.RunFig13(*seed)) }},
		{"fig14", func() (fmt.Stringer, error) { return check(harness.RunFig14(*seed)) }},
		{"pipeline", func() (fmt.Stringer, error) { return check(harness.RunPipeline(*seed)) }},
		{"ablation-plane", func() (fmt.Stringer, error) { return check(harness.RunPlaneRuleAblation(*seed)) }},
		{"ablation-algo", func() (fmt.Stringer, error) { return check(harness.RunAlgoCrossover(*seed)) }},
		{"ablation-ckpt", func() (fmt.Stringer, error) { return check(harness.RunCkptSweep(*seed)) }},
		{"ablation-kappa", func() (fmt.Stringer, error) { return check(harness.RunKappaSweep(*seed)) }},
		{"ablation-qp", func() (fmt.Stringer, error) { return check(harness.RunQPSweep(*seed)) }},
	}
	failures := 0
	for _, e := range exps {
		if *only != "" && *only != e.name && !(len(*only) >= 5 && e.name[:min(len(e.name), len(*only))] == *only) {
			continue
		}
		res, err := e.run()
		fmt.Println("==============================================")
		fmt.Println(res)
		if err != nil {
			failures++
			fmt.Printf("SHAPE CHECK FAILED: %v\n", err)
		} else {
			fmt.Println("shape check: OK")
		}
	}
	if failures > 0 {
		fmt.Printf("\n%d experiment(s) failed shape checks\n", failures)
	}
}
