// Command c4bench runs the C4 evaluation harness through the scenario
// registry: any selection of the paper's tables, figures, ablations and
// pipelines, executed concurrently on a worker pool, printed with shape-
// check verdicts and per-scenario wall-time/event statistics.
//
// Examples:
//
//	c4bench                      # every registered scenario
//	c4bench -list                # enumerate scenarios
//	c4bench -only fig12,fig13    # a selection
//	c4bench -only 'ablation-*'   # glob selection
//	c4bench -campaign flap-sweep # fault-injection campaign sweeps
//	c4bench -md > EXPERIMENTS.md # paper-vs-measured markdown table
//	c4bench -json > baseline.json# bench-regression baseline (see benchdiff)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"c4/internal/faults"
	_ "c4/internal/harness" // registers every scenario and campaign
	"c4/internal/metrics"
	"c4/internal/scenario"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "simulation seed")
		only     = flag.String("only", "all", "comma-separated scenario names (globs allowed)")
		campaign = flag.String("campaign", "", "run fault-injection campaigns by short name (comma-separated, 'all' for every campaign)")
		workers  = flag.Int("workers", 0, "concurrent scenarios (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		md       = flag.Bool("md", false, "emit the EXPERIMENTS.md paper-vs-measured table")
		jsonOut  = flag.Bool("json", false, "emit the bench-regression JSON report of every tracked scenario")
		shard    = flag.String("shard", "", "run one stride of the selection: \"i/n\" keeps scenarios with index ≡ i (mod n)")
	)
	flag.Parse()

	if *list {
		scenario.FprintList(os.Stdout, scenario.All())
		return
	}

	selection := *only
	if *campaign != "" {
		if *only != "all" {
			fmt.Fprintln(os.Stderr, "c4bench: -only and -campaign are mutually exclusive")
			os.Exit(2)
		}
		selection = faults.CampaignSelection(*campaign)
	}
	scns, err := scenario.Select(selection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4bench: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		// The bench guard tracks only scenarios with a metrics extractor.
		var tracked []scenario.Scenario
		for _, s := range scns {
			if s.Metrics != nil {
				tracked = append(tracked, s)
			}
		}
		if len(tracked) == 0 {
			fmt.Fprintf(os.Stderr, "c4bench: no tracked scenario in selection %q\n", selection)
			os.Exit(2)
		}
		scns = tracked
	}
	if *shard != "" {
		sharded, err := shardScenarios(scns, *shard)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c4bench: %v\n", err)
			os.Exit(2)
		}
		scns = sharded
	}
	runner := &scenario.Runner{Workers: *workers}
	reports := runner.Run(context.Background(), *seed, scns)

	failures := 0
	switch {
	case *jsonOut:
		failures = writeBenchJSON(os.Stdout, scns, reports, *seed)
	case *md:
		failures = writeMarkdown(os.Stdout, scns, reports, *seed)
	default:
		for _, rep := range reports {
			fmt.Println("==============================================")
			if scenario.FprintReport(os.Stdout, rep) {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "c4bench: %d scenario(s) failed\n", failures)
		os.Exit(1)
	}
}

// shardScenarios keeps the stride i (mod n) of the selection — the same
// protocol c4campaign shards use, so a CI matrix can split the registry
// across jobs. The selection is sorted before striding (scenario.Select
// returns registry order), making shard membership independent of how
// the caller spelled the selection.
func shardScenarios(scns []scenario.Scenario, spec string) ([]scenario.Scenario, error) {
	var shard, of int
	if _, err := fmt.Sscanf(spec, "%d/%d", &shard, &of); err != nil {
		return nil, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", spec)
	}
	if of < 1 || shard < 0 || shard >= of {
		return nil, fmt.Errorf("bad -shard %q: want 0 <= i < n", spec)
	}
	sorted := make([]scenario.Scenario, len(scns))
	copy(sorted, scns)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var mine []scenario.Scenario
	for i, s := range sorted {
		if i%of == shard {
			mine = append(mine, s)
		}
	}
	if len(mine) == 0 {
		return nil, fmt.Errorf("-shard %s selects no scenarios (selection has %d)", spec, len(scns))
	}
	return mine, nil
}

// writeBenchJSON emits the deterministic baseline the regression guard
// compares against, returning how many scenarios failed outright.
func writeBenchJSON(w *os.File, scns []scenario.Scenario, reports []scenario.Report, seed int64) int {
	rep := metrics.BenchReport{Seed: seed}
	failures := 0
	for i, r := range reports {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "c4bench: %s: %v\n", r.Name, r.Err)
			failures++
			continue
		}
		if r.ShapeErr != nil {
			fmt.Fprintf(os.Stderr, "c4bench: %s shape check: %v\n", r.Name, r.ShapeErr)
			failures++
		}
		rep.Scenarios = append(rep.Scenarios, metrics.BenchScenario{
			Name: r.Name, Events: r.Events, Metrics: scns[i].Metrics(r.Result),
		})
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(os.Stderr, "c4bench: %v\n", err)
		failures++
	}
	return failures
}

// writeMarkdown renders the paper-vs-measured table EXPERIMENTS.md holds,
// returning how many scenarios failed their run or shape check.
func writeMarkdown(w *os.File, scns []scenario.Scenario, reports []scenario.Report, seed int64) int {
	fmt.Fprintln(w, "# EXPERIMENTS — paper vs measured")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Every table and figure of the C4 paper (Dong et al., HPCA 2025,")
	fmt.Fprintln(w, "arXiv:2406.04594), reproduced on the simulated substrate through the")
	fmt.Fprintln(w, "scenario registry. Regenerate with `make experiments` (or")
	fmt.Fprintf(w, "`go run ./cmd/c4bench -md -seed %d > EXPERIMENTS.md`). Each scenario\n", seed)
	fmt.Fprintln(w, "is runnable by name: `go run ./cmd/c4bench -only <scenario>`.")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "| scenario | group | paper says | measured (seed %d) | shape check |\n", seed)
	fmt.Fprintln(w, "|---|---|---|---|---|")
	failures := 0
	for i, rep := range reports {
		s := scns[i]
		measured, verdict := "", "OK"
		switch {
		case rep.Err != nil:
			measured, verdict = rep.Err.Error(), "FAIL"
		case s.Summarize != nil:
			measured = s.Summarize(rep.Result)
		default:
			measured = "(no summarizer)"
		}
		if rep.Err == nil && rep.ShapeErr != nil {
			verdict = "FAIL: " + rep.ShapeErr.Error()
		}
		if verdict != "OK" {
			failures++
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			s.Name, s.Group, escape(s.Paper), escape(measured), escape(verdict))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Scenario parameters:")
	fmt.Fprintln(w)
	for i, s := range scns {
		if len(s.Params) == 0 {
			continue
		}
		keys := make([]string, 0, len(s.Params))
		for k := range s.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for j, k := range keys {
			parts[j] = k + "=" + s.Params[k]
		}
		// Wall time is host-dependent; only the deterministic event count
		// goes into the committed file, so regeneration is byte-stable.
		fmt.Fprintf(w, "- `%s`: %s (%d events)\n",
			s.Name, strings.Join(parts, ", "), reports[i].Events)
	}
	writeFaultModelDocs(w)
	writeTenancyDocs(w)
	writeOnlineDocs(w)
	writePlanDocs(w)
	writeScaleDocs(w)
	return failures
}

// writeFaultModelDocs documents the campaign engine's fault model and
// knobs (internal/faults) in the generated experiments file.
func writeFaultModelDocs(w *os.File) {
	fmt.Fprintln(w, `
## Fault model and campaign knobs

The campaign/* scenarios sweep the parameterized fault model in
internal/faults over topology scale and placement. Each trial runs its
fault schedule twice — C4P dynamic steering + C4D-driven node replacement
versus pinned routes with no fault response — and scores C4D diagnosis
precision/recall against the injected ground truth, RCA top-cause accuracy,
and the goodput delta steering buys.

Fault archetypes (composable; overlapping faults on one component stack):

- link-flap: one leaf uplink cable flaps. Severity = duty cycle (fraction
  of each Period spent down); knobs: rail, plane, group, uplink, period.
- nic-degrade: a node's NIC renegotiates down. Severity = capacity
  fraction lost on every port link of (node, rail).
- spine-outage: a whole spine switch dies; every leaf-up/spine-down link
  touching (rail, spine) goes dark for the duration.
- straggler: a node's compute slows by Severity seconds per iteration.
- packet-drop: one leaf uplink silently drops a Severity fraction of
  packets at full capacity — invisible to link-state monitors, visible
  only in transport statistics.

Trial knobs: job size (8/16/32 nodes, TP=8 per node), spine count (8 = 1:1
fabric, 4 = 2:1 oversubscription), placement (spread = every ring edge
crosses the spines; packed = one leaf group, fabric-fault immune), fault
start/duration, and per-kind severity. Campaign results aggregate into
this table via the campaign/* rows above; machine-readable reports come
from `+"`c4sim -campaign <name> -campaign-json DIR`"+` and the bench
baseline from `+"`c4bench -json`"+`.

Beyond the fixed registry rows, manifest-driven campaigns
(`+"`cmd/c4campaign`"+`, manifests in campaigns/) scale the sampled
families to thousands of trials across seed ranges and knob grids,
sharded over processes with a deterministic merge: the merged report adds
across-trial mean/stddev and seeded bootstrap 95% confidence intervals on
C4D precision/recall, RCA accuracy and the steering goodput delta, and a
4-shard merge is byte-identical to a serial run (see README
"Campaigns at scale").`)
}

// writeTenancyDocs documents the multi-tenant scenario family's engine and
// knobs (internal/tenancy) in the generated experiments file.
func writeTenancyDocs(w *os.File) {
	fmt.Fprintln(w, `
## Multi-tenant scenarios

The tenancy/* scenarios replay job arrival traces against one shared
fabric: N concurrent training jobs (pure DP, TP8 intra-node) are placed
by a pluggable policy (packed / spread / random), queue FIFO when the
cluster is full, and contend on the same simulated links. Reported
metrics: per-job goodput (samples/s), stretch (mean iteration time over
the job's compute-only iteration time), and Jain's fairness index over
per-node goodputs.

- tenancy/collision-sweep: 1/2/4 concurrent 4-node jobs, spread
  placement, 2:1 fabric, pinned-ECMP arm vs C4P-dynamic arm. The shape
  check requires C4P to win aggregate goodput at every count >= 2.
- tenancy/churn: a seeded Poisson trace (mean interarrival 6 s, mean
  duration 25 s, sizes 2/4) on the 1:1 fabric under C4P with packed
  placement; every admitted tenant must make progress and depart cleanly.
- tenancy/placement-compare: the same 3-job workload under each placement
  policy with pinned ECMP at 2:1; packing must beat spreading.

Traces are JSON (`+"`c4sim -tenancy-trace FILE`"+`; format in README.md)
and equal seeds replay byte-identically, serial or parallel.`)
}

// writeOnlineDocs documents the streaming-telemetry scenario family's
// engine and knobs (internal/telemetry) in the generated experiments file.
func writeOnlineDocs(w *os.File) {
	fmt.Fprintln(w, `
## Streaming telemetry scenarios

The online/* scenarios race the streaming detector (internal/telemetry)
against batch C4D on identical fault schedules: one job, one fault, both
analysis planes fed byte-equal record streams through a single
`+"`accl.Fanout`"+` instrumentation point. The streaming plane ingests
records through bounded per-node ring collectors (drops accounted),
merges them in deterministic event-time order, and folds them into
incremental aggregates — EWMA, a fixed-bin streaming quantile sketch for
the healthy-median baseline, O(1)-per-record delay-matrix updates — so
detections fire the instant a threshold crosses instead of at the next
reporting tick.

- online/detection-latency: nic-degrade / straggler / spine-outage under
  pinned routes; TimeToDetect scored against the injected ground truth
  for both arms. The shape check requires the online detector to strictly
  beat batch C4D on every fault.
- online/cadence-sweep: the same fault under coarsening collector drain
  cadences (streaming, 0.5 s, 2 s, 5 s): TTD may only grow, drain
  overhead must fall, the default ring must not drop.
- online/scale-sweep: healthy jobs of 2/4/8 nodes with both planes
  attached; the batch master's delay-matrix cells per pass must grow with
  fleet size while the streaming cost per record (state updates + loop
  iterations on the ingest path) stays a small flat constant.

Telemetry streams serialize as JSONL (`+"`c4sim -telemetry-out FILE`"+`,
format in README.md) and replay offline through `+"`c4watch`"+`, which
reproduces the live detections at identical virtual instants.`)
}

// writePlanDocs documents the training-iteration planner family's engine
// and knobs (internal/plan) in the generated experiments file.
func writePlanDocs(w *os.File) {
	fmt.Fprintln(w, `
## Training-iteration planner scenarios

The plan/* scenarios run internal/plan, the compiler from a 3D
parallelization strategy (TP/PP/DP + gradient accumulation) to a timed
1F1B micro-batch schedule executed on the simulated fabric: per-stage
forward/backward compute slots in the canonical one-forward-one-backward
order, activation and gradient tensors shipped between adjacent stages as
point-to-point `+"`accl.SendRecv`"+` traffic, and the data-parallel
gradient volume split into buckets that launch inside the final backward
pass (overlap on) or at the stage drain (overlap off). Every run reports
the iteration breakdown the sweeps assert on:

    iteration = compute + pipeline bubble + exposed communication

- plan/strategy-sweep: DP×PP splits of a fixed 16-node world under both
  ECMP and C4P. The shape check asserts the paper's precondition: the
  exposed-communication share falls as PP deepens, and the C4P-over-ECMP
  goodput delta grows monotonically with that share.
- plan/bucket-sweep: the overlap benefit curve. Exposed communication
  falls monotonically as buckets shrink, but throughput peaks at an
  interior bucket size — ever-finer buckets steal fabric bandwidth from
  the pipeline drain's gradient transfers.
- plan/overlap-ablation: overlap on vs off at fixed strategy and bucket
  size; overlap must strictly reduce exposed communication and win
  throughput.

Single strategies compile and run from the CLI
(`+"`c4sim -plan tp8/pp4/dp2/ga8 -plan-bucket-mib 256 -plan-overlap`"+`),
and arrival-trace tenants take `+"`pp`"+`/`+"`ga`"+` fields, so
multi-tenant runs can mix pipeline and pure-DP traffic on one fabric.`)
}

// writeScaleDocs documents the netsim kernel family (internal/netsim's
// flow-class aggregation and parallel component settle) in the generated
// experiments file.
func writeScaleDocs(w *os.File) {
	fmt.Fprintln(w, `
## Netsim kernel scenarios

The netsim/* scenarios measure the fluid network kernel at datacenter
scale on a gang-partitioned world: groups of 8 nodes running ring
traffic, each ring edge carrying many equal-path flows (QPs times
in-flight chunks). Two rebuilt kernels are held to one oath — they must
reproduce the per-flow reference kernel bit for bit:

- flow-class aggregation (`+"`netsim.Config.Aggregate`"+`): flows with
  identical link chains collapse into one fluid class with a member
  count, so max-min filling, the CNP pass, and the ETA pass cost
  O(classes), not O(flows). Per-flow semantics (StartFlow / Cancel /
  Reroute / OnPathDown, per-member completion callbacks) are untouched.
- parallel component settle (`+"`netsim.Config.SettleWorkers`"+`):
  touched links partition into connected components via union-find and
  fill on a bounded worker pool; components are memory-disjoint and
  outputs merge in deterministic order, so the parallel run is
  byte-identical to serial (proved under -race in CI).

Work is scored in deterministic KernelStats link visits, so the ratios
are bench-baseline stable. netsim/scale-aggregate demands >= 10x less
kernel work at 256 nodes; netsim/scale-parallel pins the component
decomposition; netsim/scale-sweep shows the ratio growing with the
aggregation factor (flows per chain). Equivalence is re-proved at every
layer: netsim unit tests, collective-level tests in internal/accl, and
whole-family replays of the figure/tenancy/plan scenarios through the
forced aggregated kernel.`)
}

func escape(s string) string {
	return strings.ReplaceAll(strings.ReplaceAll(s, "|", "\\|"), "\n", " ")
}
