package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"c4/internal/metrics"
	"c4/internal/scenario"
)

// runTracked runs a cheap tracked scenario through the registry runner,
// shared by the JSON and markdown smoke tests.
func runTracked(t *testing.T, name string) ([]scenario.Scenario, []scenario.Report) {
	t.Helper()
	scns, err := scenario.Select(name)
	if err != nil {
		t.Fatal(err)
	}
	return scns, (&scenario.Runner{Workers: 1}).Run(context.Background(), 1, scns)
}

func TestWriteBenchJSON(t *testing.T) {
	scns, reports := runTracked(t, "tableI,nccltest")
	path := filepath.Join(t.TempDir(), "bench.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if failures := writeBenchJSON(f, scns, reports, 1); failures != 0 {
		t.Fatalf("writeBenchJSON reported %d failures", failures)
	}
	f.Close()
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	rep, err := metrics.ReadBenchReport(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 2 || rep.Seed != 1 {
		t.Fatalf("bench report = %+v", rep)
	}
	for _, s := range rep.Scenarios {
		if len(s.Metrics) == 0 {
			t.Fatalf("scenario %s tracked no metrics", s.Name)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	scns, reports := runTracked(t, "tableI")
	path := filepath.Join(t.TempDir(), "exp.md")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if failures := writeMarkdown(f, scns, reports, 1); failures != 0 {
		t.Fatalf("writeMarkdown reported %d failures", failures)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	for _, want := range []string{"| tableI |", "Fault model and campaign knobs", "link-flap"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestShardScenarios pins the c4bench shard stride: sorted selection,
// i-mod-n membership, exact partition across shards, and rejection of
// malformed or empty shards.
func TestShardScenarios(t *testing.T) {
	scns, err := scenario.Select("all")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		part, err := shardScenarios(scns, fmt.Sprintf("%d/3", i))
		if err != nil {
			t.Fatalf("shard %d/3: %v", i, err)
		}
		for _, s := range part {
			seen[s.Name]++
		}
	}
	if len(seen) != len(scns) {
		t.Fatalf("3 shards cover %d scenarios, registry has %d", len(seen), len(scns))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("scenario %s owned by %d shards", name, n)
		}
	}
	whole, err := shardScenarios(scns, "0/1")
	if err != nil || len(whole) != len(scns) {
		t.Fatalf("0/1 shard = %d scenarios, err %v", len(whole), err)
	}
	for _, bad := range []string{"x", "1/1", "-1/2", "3/2"} {
		if _, err := shardScenarios(scns, bad); err == nil {
			t.Errorf("shardScenarios(%q) accepted", bad)
		}
	}
	if _, err := shardScenarios(scns[:1], "1/2"); err == nil {
		t.Error("empty shard accepted")
	}
}
