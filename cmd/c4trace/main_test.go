package main

import (
	"os"
	"path/filepath"
	"testing"

	"c4/internal/sim"
	"c4/internal/trace"
)

// writeTestTrace records a two-iteration toy trace and exports it.
func writeTestTrace(t *testing.T, scale sim.Time) string {
	t.Helper()
	tr := trace.New()
	tr.Bind(sim.NewEngine())
	for i := 0; i < 2; i++ {
		base := sim.Time(i) * 100
		iter := tr.StartAt(nil, "iter", "iter-0", base)
		slot := tr.StartAt(iter, "slot", "d0/s0 fwd", base)
		slot.FinishAt(base + 40)
		fl := tr.StartAt(iter, "flow", "allreduce", base+40)
		fl.FinishAt(base + 40 + scale)
		iter.FinishAt(base + 40 + scale)
	}
	path := filepath.Join(t.TempDir(), "t.trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteChrome(f, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoots(t *testing.T) {
	spans := load(writeTestTrace(t, 10))
	rs := roots(spans)
	if len(rs) != 2 || rs[0].Kind != "iter" {
		t.Fatalf("roots = %v, want 2 iter spans", rs)
	}
}

func TestPathTotalsAttributesDelta(t *testing.T) {
	// Two arms differing only in flow time: the diff must land entirely
	// on the flow identity, not on the slot.
	a, _ := pathTotals(load(writeTestTrace(t, 10)))
	b, _ := pathTotals(load(writeTestTrace(t, 30)))
	if d := b["flow allreduce"] - a["flow allreduce"]; d != 2*20 {
		t.Fatalf("flow delta = %v, want 40", d)
	}
	if d := b["slot d0/s0 fwd"] - a["slot d0/s0 fwd"]; d != 0 {
		t.Fatalf("slot delta = %v, want 0", d)
	}
}

func TestRunCheckAndSummary(t *testing.T) {
	path := writeTestTrace(t, 10)
	if code := runCheck(path); code != 0 {
		t.Fatalf("runCheck = %d, want 0", code)
	}
	if code := runSummary(path, -1, 8); code != 0 {
		t.Fatalf("runSummary = %d, want 0", code)
	}
	if code := runDiff(path, path, 8); code != 0 {
		t.Fatalf("runDiff = %d, want 0", code)
	}
}
