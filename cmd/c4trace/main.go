// Command c4trace summarizes and compares causal traces recorded by
// `c4sim -trace-out` (or any c4.Session with an attached tracer). It
// answers the two questions a trace exists for — "where did the
// simulated time go" and "what chain of spans determined the iteration
// time" — without leaving the terminal, and diffs two traces to
// attribute a goodput delta to named spans on the critical path.
//
//	c4trace run.trace.json                 # profile + per-iteration critical paths
//	c4trace -iter 3 run.trace.json         # critical-path detail for iteration 3
//	c4trace -diff ecmp.json c4p.json       # what changed between two arms
//	c4trace -check run.trace.json          # exit 0 iff the trace is well-formed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"c4/internal/sim"
	"c4/internal/trace"
)

func main() {
	var (
		diff  = flag.Bool("diff", false, "compare two traces: attribute the iteration-time delta to named critical-path spans")
		check = flag.Bool("check", false, "validate the trace (parses, has spans, critical path extracts) and exit")
		iter  = flag.Int("iter", -1, "iteration to detail (-1 = last finished)")
		top   = flag.Int("top", 8, "rows to print per table")
	)
	flag.Parse()
	args := flag.Args()

	switch {
	case *diff:
		if len(args) != 2 {
			fatalf("usage: c4trace -diff a.trace.json b.trace.json")
		}
		os.Exit(runDiff(args[0], args[1], *top))
	case *check:
		if len(args) != 1 {
			fatalf("usage: c4trace -check trace.json")
		}
		os.Exit(runCheck(args[0]))
	default:
		if len(args) != 1 {
			fatalf("usage: c4trace [-iter N] [-top N] trace.json")
		}
		os.Exit(runSummary(args[0], *iter, *top))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "c4trace: "+format+"\n", args...)
	os.Exit(2)
}

func load(path string) []*trace.Span {
	f, err := os.Open(path)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	spans, err := trace.ParseChrome(f)
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return spans
}

// roots returns the spans to extract critical paths from: the recorded
// iterations, or — for traces without an iteration layer — every
// top-level span.
func roots(spans []*trace.Span) []*trace.Span {
	if iters := trace.ByKind(spans, "iter"); len(iters) > 0 {
		return iters
	}
	var out []*trace.Span
	for _, s := range spans {
		if s.Parent == 0 {
			out = append(out, s)
		}
	}
	return out
}

// runSummary prints the per-kind profile, one line per iteration naming
// the dominant critical-path contributor, and the full path breakdown of
// the selected iteration.
func runSummary(path string, iterSel, top int) int {
	spans := load(path)
	horizon := trace.Horizon(spans)
	fmt.Printf("%s: %d spans, horizon %v\n\n", path, len(spans), horizon)

	fmt.Println("where the simulated time went (self = not covered by children):")
	fmt.Printf("  %-8s %6s %14s %14s\n", "kind", "count", "total", "self")
	for i, r := range trace.Profile(spans) {
		if i >= top {
			break
		}
		fmt.Printf("  %-8s %6d %14v %14v\n", r.Kind, r.Count, r.Total, r.Self)
	}

	rs := roots(spans)
	if len(rs) == 0 {
		fmt.Println("\nno iterations or top-level spans recorded")
		return 0
	}
	fmt.Printf("\ncritical paths (%d roots):\n", len(rs))
	var detail *trace.Span
	for i, root := range rs {
		segs := trace.CriticalPath(spans, root)
		rows := trace.PathProfile(segs)
		lead := "-"
		if len(rows) > 0 {
			lead = fmt.Sprintf("%2.0f%% %s %s", rows[0].Share*100, rows[0].Kind, rows[0].Name)
		}
		fmt.Printf("  %-12s %12v  dominated by %s\n", root.Name, root.Dur(horizon), lead)
		if iterSel == i || (iterSel < 0 && root.End >= 0) {
			detail = root
		}
	}
	if detail == nil {
		detail = rs[len(rs)-1]
	}

	segs := trace.CriticalPath(spans, detail)
	fmt.Printf("\ncritical path of %s (%v):\n", detail.Name, detail.Dur(horizon))
	fmt.Printf("  %-8s %-24s %14s %7s\n", "kind", "name", "self", "share")
	for i, r := range trace.PathProfile(segs) {
		if i >= top {
			break
		}
		fmt.Printf("  %-8s %-24s %14v %6.1f%%\n", r.Kind, r.Name, r.Self, r.Share*100)
	}
	return 0
}

// pathTotals sums critical-path self time by (kind, name) across every
// root, so two arms of an experiment can be joined identity-by-identity.
func pathTotals(spans []*trace.Span) (map[string]sim.Time, sim.Time) {
	totals := map[string]sim.Time{}
	var whole sim.Time
	for _, root := range roots(spans) {
		for _, r := range trace.PathProfile(trace.CriticalPath(spans, root)) {
			totals[r.Kind+" "+r.Name] += r.Self
			whole += r.Self
		}
	}
	return totals, whole
}

// runDiff attributes the end-to-end time delta between two traces (for
// example the ECMP and C4P arms of a plan sweep) to named spans on the
// critical path, sorted by how much they moved.
func runDiff(pathA, pathB string, top int) int {
	sa, sb := load(pathA), load(pathB)
	ta, wa := pathTotals(sa)
	tb, wb := pathTotals(sb)

	fmt.Printf("critical-path time: %v (%s) vs %v (%s), delta %v\n\n",
		wa, pathA, wb, pathB, wb-wa)

	keys := map[string]bool{}
	for k := range ta {
		keys[k] = true
	}
	for k := range tb {
		keys[k] = true
	}
	type row struct {
		key   string
		a, b  sim.Time
		delta sim.Time
	}
	var rows []row
	for k := range keys {
		r := row{key: k, a: ta[k], b: tb[k]}
		r.delta = r.b - r.a
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		di, dj := rows[i].delta, rows[j].delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return rows[i].key < rows[j].key
	})
	fmt.Printf("  %-34s %14s %14s %14s\n", "span (kind name)", pathA, pathB, "delta")
	for i, r := range rows {
		if i >= top {
			break
		}
		fmt.Printf("  %-34s %14v %14v %+14v\n", r.key, r.a, r.b, r.delta)
	}
	return 0
}

// runCheck is the CI smoke gate: the trace must parse, contain spans,
// and yield a non-empty critical path from at least one root.
func runCheck(path string) int {
	spans := load(path)
	if len(spans) == 0 {
		fmt.Fprintf(os.Stderr, "c4trace: %s: no spans\n", path)
		return 1
	}
	rs := roots(spans)
	if len(rs) == 0 {
		fmt.Fprintf(os.Stderr, "c4trace: %s: no root spans\n", path)
		return 1
	}
	for _, root := range rs {
		if len(trace.CriticalPath(spans, root)) == 0 {
			fmt.Fprintf(os.Stderr, "c4trace: %s: empty critical path for %s\n", path, root.Name)
			return 1
		}
	}
	fmt.Printf("%s: ok (%d spans, %d roots)\n", path, len(spans), len(rs))
	return 0
}
