package main

import (
	"testing"

	"c4/internal/serve"
)

// TestSmoke runs the daemon's self-test end to end: in-process loopback
// server, one session driven over HTTP + SSE, streamed bytes diffed
// against the one-shot path.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("serving e2e in -short mode")
	}
	if code := runSmoke(serve.Config{}); code != 0 {
		t.Fatalf("runSmoke = %d, want 0", code)
	}
}
