// Command c4serve is the simulation-as-a-service daemon: it exposes the
// c4.Session lifecycle over a REST/JSON API so clients create, run,
// stream and tear down simulated training runs over HTTP instead of
// shelling out to c4sim. Sessions are isolated and deterministic — a
// served session's metrics and telemetry are byte-identical to a
// one-shot c4sim run of the same spec and seed — and the table is
// bounded (LRU eviction of finished sessions, admission control on
// concurrent runs).
//
//	c4serve -addr :8080
//	curl -s localhost:8080/v1/sessions -d '{"seed": 1, "job": {"model": "gpt22b", "fault": "straggler"}}'
//	curl -s -X POST localhost:8080/v1/sessions/s000001/run
//	curl -N  localhost:8080/v1/sessions/s000001/stream   # live SSE
//	curl -s  localhost:8080/v1/sessions/s000001          # status + metrics
//	curl -s -X DELETE localhost:8080/v1/sessions/s000001
//
// See the README's Serving section for the session-spec schema.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"c4"
	"c4/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxSess    = flag.Int("max-sessions", 32, "session table capacity (finished sessions are evicted LRU)")
		maxRun     = flag.Int("max-running", 8, "concurrently running sessions before 429")
		runTimeout = flag.Duration("run-timeout", 0, "per-session run timeout (0 = none)")
		streamMiB  = flag.Int("stream-limit-mib", 64, "per-session telemetry retention in MiB")
		drain      = flag.Duration("drain-timeout", 30*time.Second, "grace for in-flight runs on shutdown")
		opsAddr    = flag.String("ops", "", "also serve the operational plane (pprof + /metrics) on this address, e.g. 127.0.0.1:6060")
		quiet      = flag.Bool("quiet", false, "suppress per-request access logs")
		smoke      = flag.Bool("smoke", false, "self-test: serve on loopback, drive one session over HTTP+SSE, diff against a one-shot run, exit")
	)
	flag.Parse()

	cfg := serve.Config{
		MaxSessions: *maxSess,
		MaxRunning:  *maxRun,
		RunTimeout:  *runTimeout,
		StreamLimit: *streamMiB << 20,
	}
	if *smoke {
		os.Exit(runSmoke(cfg))
	}

	srv := serve.New(cfg)
	handler := http.Handler(srv.Handler())
	if !*quiet {
		handler = serve.AccessLog(os.Stderr, handler)
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if *opsAddr != "" {
		ops := &http.Server{Addr: *opsAddr, Handler: srv.OpsHandler()}
		go func() {
			if err := ops.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("c4serve: ops plane: %v", err)
			}
		}()
		defer ops.Shutdown(context.Background())
		log.Printf("c4serve ops plane (pprof, /metrics) on %s", *opsAddr)
	}
	log.Printf("c4serve listening on %s (sessions %d, running %d)", *addr, *maxSess, *maxRun)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("c4serve: %v", err)
	case sig := <-sigc:
		log.Printf("c4serve: %v, draining (grace %v)", sig, *drain)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("c4serve: drain incomplete: %v", err)
	}
	hs.Shutdown(context.Background())
}

// smokeSpec is the session the smoke test drives: short enough for CI,
// long enough to stream a non-trivial record volume.
func smokeSpec() c4.SessionSpec {
	return c4.SessionSpec{
		Seed: 1,
		Job:  &c4.SessionJob{Model: "gpt22b", Fault: "straggler", HorizonS: 120},
	}
}

// runSmoke boots the daemon on a loopback listener inside this process,
// drives one full session over real HTTP — create, run, SSE stream,
// status, delete — and diffs the streamed telemetry byte-for-byte
// against a direct c4.Session run writing through the c4sim
// -telemetry-out path. It is the hermetic serving e2e `make serve-smoke`
// runs in CI: no curl, no fixed port, no leftover process.
func runSmoke(cfg serve.Config) (code int) {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "c4serve -smoke: "+format+"\n", args...)
		return 1
	}

	// Reference: the one-shot CLI path (Session + JSONL StreamWriter).
	var want bytes.Buffer
	sess, err := c4.NewSession(c4.SessionOptions{Spec: smokeSpec()})
	if err != nil {
		return fail("building reference session: %v", err)
	}
	w := c4.NewTelemetryStreamWriter(&want)
	sess.AttachSink(w)
	if err := sess.Run(context.Background()); err != nil {
		return fail("reference run: %v", err)
	}
	if err := w.Flush(); err != nil {
		return fail("reference stream: %v", err)
	}
	wantMetrics := sess.Metrics()
	sess.Close()

	// Daemon on loopback.
	srv := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fail("listen: %v", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()

	post := func(path string, body []byte) (serve.Status, error) {
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return serve.Status{}, err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			return serve.Status{}, fmt.Errorf("%s: %d %s", path, resp.StatusCode, data)
		}
		var st serve.Status
		return st, json.Unmarshal(data, &st)
	}

	spec, _ := json.Marshal(smokeSpec())
	st, err := post("/v1/sessions", spec)
	if err != nil {
		return fail("create: %v", err)
	}
	if _, err := post("/v1/sessions/"+st.ID+"/run", nil); err != nil {
		return fail("run: %v", err)
	}

	// Follow the SSE stream to the end event, reassembling JSONL.
	resp, err := http.Get(base + "/v1/sessions/" + st.ID + "/stream")
	if err != nil {
		return fail("stream: %v", err)
	}
	defer resp.Body.Close()
	var got bytes.Buffer
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	ended := false
streamLoop:
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: end":
			ended = true
		case strings.HasPrefix(line, "data: "):
			if ended {
				break streamLoop // the end event's payload
			}
			got.WriteString(strings.TrimPrefix(line, "data: "))
			got.WriteByte('\n')
		}
	}
	if err := sc.Err(); err != nil || !ended {
		return fail("stream ended badly: err=%v ended=%t", err, ended)
	}

	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		return fail("served stream (%d bytes) differs from one-shot -telemetry-out stream (%d bytes)",
			got.Len(), want.Len())
	}

	// Status must agree with the one-shot metrics exactly.
	sresp, err := http.Get(base + "/v1/sessions/" + st.ID)
	if err != nil {
		return fail("status: %v", err)
	}
	data, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var final serve.Status
	if err := json.Unmarshal(data, &final); err != nil {
		return fail("status decode: %v", err)
	}
	if final.State != serve.StateDone {
		return fail("final state %s (%s)", final.State, final.Error)
	}
	for k, v := range wantMetrics {
		if final.Metrics[k] != v {
			return fail("metric %s: served %v, one-shot %v", k, final.Metrics[k], v)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fail("delete: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		return fail("delete: %d", dresp.StatusCode)
	}
	if err := srv.Shutdown(context.Background()); err != nil && !errors.Is(err, context.Canceled) {
		return fail("shutdown: %v", err)
	}
	fmt.Printf("serve-smoke ok: %d records streamed over SSE, byte-identical to one-shot; metrics match (%d keys)\n",
		final.Records, len(wantMetrics))
	return 0
}
