// Command nccltest is the simulated equivalent of NVIDIA's nccl-tests
// collective benchmark used throughout the paper's evaluation: it runs
// repeated ring allreduce operations on the simulated testbed and reports
// per-iteration and mean bus bandwidth. The same benchmark is registered
// in the scenario registry as "nccltest" at its default configuration.
//
// Example:
//
//	nccltest -nodes 8 -mib 512 -iters 10 -provider c4p
//	nccltest -nodes 8 -provider baseline -seed 3
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"c4/internal/harness"
	"c4/internal/topo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: parses flags, executes the benchmark and
// reports the exit code (2 = usage error, 1 = benchmark failure).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("nccltest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes    = fs.Int("nodes", 8, "number of nodes in the ring (8 GPUs each)")
		mib      = fs.Float64("mib", 512, "payload per iteration in MiB")
		iters    = fs.Int("iters", 8, "iterations")
		provider = fs.String("provider", "c4p", "path control: baseline | c4p | c4p-dynamic")
		spines   = fs.Int("spines", 8, "spine switches per rail (8 = 1:1 oversubscription, 4 = 2:1)")
		qps      = fs.Int("qps", 2, "QPs per connection")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var kind harness.ProviderKind
	switch *provider {
	case "baseline":
		kind = harness.Baseline
	case "c4p":
		kind = harness.C4PStatic
	case "c4p-dynamic":
		kind = harness.C4PDynamic
	default:
		fmt.Fprintf(stderr, "nccltest: unknown provider %q\n", *provider)
		return 2
	}
	if max := topo.MultiJobTestbed(*spines).Nodes; *nodes > max {
		fmt.Fprintf(stderr, "nccltest: at most %d nodes on this testbed\n", max)
		return 2
	}

	code := 0
	func() {
		defer func() {
			if p := recover(); p != nil {
				fmt.Fprintf(stderr, "nccltest: %v\n", p)
				code = 1
			}
		}()
		res := harness.RunNCCLTest(*seed, harness.NCCLTestSpec{
			Nodes: *nodes, Spines: *spines, MiB: *mib, Iters: *iters,
			Kind: kind, QPsPerConn: *qps,
		})
		fmt.Fprint(stdout, res)
	}()
	return code
}
