// Command nccltest is the simulated equivalent of NVIDIA's nccl-tests
// collective benchmark used throughout the paper's evaluation: it runs
// repeated ring allreduce operations on the simulated testbed and reports
// per-iteration and mean bus bandwidth.
//
// Example:
//
//	nccltest -nodes 8 -mib 512 -iters 10 -provider c4p
//	nccltest -nodes 8 -provider baseline -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"c4/internal/harness"
	"c4/internal/topo"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "number of nodes in the ring (8 GPUs each)")
		mib      = flag.Float64("mib", 512, "payload per iteration in MiB")
		iters    = flag.Int("iters", 8, "iterations")
		provider = flag.String("provider", "c4p", "path control: baseline | c4p | c4p-dynamic")
		spines   = flag.Int("spines", 8, "spine switches per rail (8 = 1:1 oversubscription, 4 = 2:1)")
		qps      = flag.Int("qps", 2, "QPs per connection")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var kind harness.ProviderKind
	switch *provider {
	case "baseline":
		kind = harness.Baseline
	case "c4p":
		kind = harness.C4PStatic
	case "c4p-dynamic":
		kind = harness.C4PDynamic
	default:
		fmt.Fprintf(os.Stderr, "nccltest: unknown provider %q\n", *provider)
		os.Exit(2)
	}

	spec := topo.MultiJobTestbed(*spines)
	if *nodes > spec.Nodes {
		fmt.Fprintf(os.Stderr, "nccltest: at most %d nodes on this testbed\n", spec.Nodes)
		os.Exit(2)
	}
	env := harness.NewEnv(spec)
	ringNodes := make([]int, *nodes)
	for i := range ringNodes {
		// Alternate leaf groups so every ring edge crosses the spines.
		if i%2 == 0 {
			ringNodes[i] = i / 2
		} else {
			ringNodes[i] = 8 + i/2
		}
	}
	bench, err := harness.StartBench(env, harness.BenchConfig{
		Nodes:      ringNodes,
		Bytes:      *mib * (1 << 20),
		Iters:      *iters,
		Provider:   env.NewProvider(kind, *seed),
		QPsPerConn: *qps,
		Adaptive:   kind == harness.C4PDynamic,
		Seed:       *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "nccltest: %v\n", err)
		os.Exit(1)
	}
	env.Eng.Run()

	fmt.Printf("# nccltest (simulated) — allreduce, ring, %d nodes (%d GPUs), %s, %.0f MiB\n",
		*nodes, *nodes*spec.GPUsPerNode, kind, *mib)
	fmt.Printf("%-6s %-12s %-12s\n", "iter", "t(s)", "busbw(Gbps)")
	for i, s := range bench.Series.Samples {
		fmt.Printf("%-6d %-12.3f %-12.1f\n", i, s.T, s.V)
	}
	fmt.Printf("# mean busbw: %.1f Gbps\n", bench.MeanBusGbps())
}
