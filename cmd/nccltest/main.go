// Command nccltest is the simulated equivalent of NVIDIA's nccl-tests
// collective benchmark used throughout the paper's evaluation: it runs
// repeated ring allreduce operations on the simulated testbed and reports
// per-iteration and mean bus bandwidth. The same benchmark is registered
// in the scenario registry as "nccltest" at its default configuration.
//
// Example:
//
//	nccltest -nodes 8 -mib 512 -iters 10 -provider c4p
//	nccltest -nodes 8 -provider baseline -seed 3
package main

import (
	"flag"
	"fmt"
	"os"

	"c4/internal/harness"
	"c4/internal/topo"
)

func main() {
	var (
		nodes    = flag.Int("nodes", 8, "number of nodes in the ring (8 GPUs each)")
		mib      = flag.Float64("mib", 512, "payload per iteration in MiB")
		iters    = flag.Int("iters", 8, "iterations")
		provider = flag.String("provider", "c4p", "path control: baseline | c4p | c4p-dynamic")
		spines   = flag.Int("spines", 8, "spine switches per rail (8 = 1:1 oversubscription, 4 = 2:1)")
		qps      = flag.Int("qps", 2, "QPs per connection")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	var kind harness.ProviderKind
	switch *provider {
	case "baseline":
		kind = harness.Baseline
	case "c4p":
		kind = harness.C4PStatic
	case "c4p-dynamic":
		kind = harness.C4PDynamic
	default:
		fmt.Fprintf(os.Stderr, "nccltest: unknown provider %q\n", *provider)
		os.Exit(2)
	}
	if max := topo.MultiJobTestbed(*spines).Nodes; *nodes > max {
		fmt.Fprintf(os.Stderr, "nccltest: at most %d nodes on this testbed\n", max)
		os.Exit(2)
	}

	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "nccltest: %v\n", p)
			os.Exit(1)
		}
	}()
	res := harness.RunNCCLTest(*seed, harness.NCCLTestSpec{
		Nodes: *nodes, Spines: *spines, MiB: *mib, Iters: *iters,
		Kind: kind, QPsPerConn: *qps,
	})
	fmt.Print(res)
}
