package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke tests drive the CLI's flag paths end to end, like the other four
// commands; the benchmark engine itself is exercised by internal/harness.

func TestRunSmoke(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-nodes", "4", "-iters", "2", "-mib", "64"}, &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %s)", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"allreduce", "busbw", "mean busbw"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunProviders(t *testing.T) {
	for _, p := range []string{"baseline", "c4p", "c4p-dynamic"} {
		var out, errw bytes.Buffer
		if code := run([]string{"-provider", p, "-nodes", "4", "-iters", "1", "-mib", "32"}, &out, &errw); code != 0 {
			t.Fatalf("provider %s: run = %d (stderr: %s)", p, code, errw.String())
		}
	}
}

func TestRunHelpExitsZero(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Fatalf("run(-h) = %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "provider") {
		t.Fatalf("usage text missing:\n%s", errw.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := map[string][]string{
		"unknown provider": {"-provider", "smoke-signals"},
		"too many nodes":   {"-nodes", "99"},
		"bad flag":         {"-definitely-not-a-flag"},
	}
	for name, args := range cases {
		var out, errw bytes.Buffer
		if code := run(args, &out, &errw); code != 2 {
			t.Errorf("%s: run = %d, want 2", name, code)
		}
		if errw.Len() == 0 {
			t.Errorf("%s: no diagnostic on stderr", name)
		}
	}
}
