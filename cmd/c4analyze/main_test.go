package main

import (
	"os"
	"path/filepath"
	"testing"

	"c4/internal/c4d"
	"c4/internal/sim"
)

// TestGenerateDemoAndAnalyze drives the CLI's demo path end to end: the
// registered analyzer-demo scenario runs, archives its four stats files,
// and the offline analyzer localizes the injected Rx degradation from the
// archived transport records — the Fig 5 workflow without a terminal.
func TestGenerateDemoAndAnalyze(t *testing.T) {
	dir := t.TempDir()
	path, err := generateDemo(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	// rank-stats may legitimately be empty: the demo bench passes no
	// arrival skew, so no wait records accrue.
	for _, name := range []string{"comm-stats.csv", "coll-stats.csv", "rank-stats.csv", "conn-stats.csv"} {
		st, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("stats file %s not archived: %v", name, err)
		}
		if name != "rank-stats.csv" && st.Size() == 0 {
			t.Fatalf("stats file %s empty", name)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	msgs, err := c4d.ReadConnStats(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Fatal("no transport records in archived conn stats")
	}
	findings := c4d.AnalyzeOffline(msgs, 10*sim.Second, 2, 0.6)
	if len(findings) == 0 {
		t.Fatal("offline analyzer found nothing in the demo archive")
	}
	blamed := false
	for _, of := range findings {
		if of.Finding.Dst == 9 { // the demo's injected Rx victim
			blamed = true
		}
	}
	if !blamed {
		t.Fatalf("offline analyzer never blamed the demo victim: %v", findings)
	}
}

func TestGenerateDemoBadDir(t *testing.T) {
	// A file where the directory should be: MkdirAll must fail cleanly.
	dir := t.TempDir()
	file := filepath.Join(dir, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := generateDemo(file, 1); err == nil {
		t.Fatal("generateDemo into a file path succeeded")
	}
}
