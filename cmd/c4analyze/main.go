// Command c4analyze is the offline C4 Analyzer of the paper's Fig 5: it
// reads the conn-stats.csv transport time series that the C4a agents
// archive and replays it through the same delay-matrix localizer the
// online master uses, printing per-window findings — the post-mortem
// workflow for "why was this job slow last night?".
//
// Usage:
//
//	c4analyze conn-stats.csv            # analyze an archived stats file
//	c4analyze -demo -dir /tmp/stats     # run the registered analyzer-demo
//	                                    # scenario (an injected slow NIC),
//	                                    # archive its stats, and analyze
//	c4analyze -list                     # enumerate registered scenarios
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"c4/internal/c4d"
	"c4/internal/harness"
	"c4/internal/scenario"
	"c4/internal/sim"
)

func main() {
	var (
		demo   = flag.Bool("demo", false, "generate demo stats from the analyzer-demo scenario, then analyze")
		dir    = flag.String("dir", ".", "directory for demo stats files")
		window = flag.Duration("window", 10e9, "analysis window")
		kappa  = flag.Float64("kappa", 2, "slowdown multiple considered anomalous")
		frac   = flag.Float64("frac", 0.6, "row/column fraction for NIC-side verdicts")
		seed   = flag.Int64("seed", 1, "simulation seed (demo mode)")
		list   = flag.Bool("list", false, "list registered scenarios and exit")
	)
	flag.Parse()

	if *list {
		scenario.FprintList(os.Stdout, scenario.All())
		return
	}

	var path string
	switch {
	case *demo:
		p, err := generateDemo(*dir, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c4analyze: %v\n", err)
			os.Exit(1)
		}
		path = p
		fmt.Printf("demo stats written under %s\n", *dir)
	case flag.NArg() == 1:
		path = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: c4analyze [-demo -dir DIR] [conn-stats.csv]")
		os.Exit(2)
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4analyze: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	msgs, err := c4d.ReadConnStats(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4analyze: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("loaded %d transport records from %s\n", len(msgs), path)

	findings := c4d.AnalyzeOffline(msgs, sim.FromDuration(*window), *kappa, *frac)
	if len(findings) == 0 {
		fmt.Println("no anomalies found")
		return
	}
	for _, of := range findings {
		f := of.Finding
		switch f.Scope {
		case c4d.ScopeNodeTx:
			fmt.Printf("[%v..%v] comm %d: node %d Tx slow (x%.1f) — whole matrix row degraded\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Src, f.Slowdown)
		case c4d.ScopeNodeRx:
			fmt.Printf("[%v..%v] comm %d: node %d Rx slow (x%.1f) — whole matrix column degraded\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Dst, f.Slowdown)
		default:
			fmt.Printf("[%v..%v] comm %d: connection n%d->n%d slow (x%.1f)\n",
				of.WindowStart, of.WindowEnd, of.Comm, f.Src, f.Dst, f.Slowdown)
		}
	}
}

// generateDemo executes the registered analyzer-demo scenario through the
// runner and archives all four stats files from its recorder, returning
// the conn-stats path.
func generateDemo(dir string, seed int64) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	s, ok := scenario.Get("analyzer-demo")
	if !ok {
		return "", fmt.Errorf("analyzer-demo scenario not registered")
	}
	rep := scenario.RunOne(context.Background(), s, seed)
	if rep.Err != nil {
		return "", rep.Err
	}
	if rep.ShapeErr != nil {
		// The stats files are still valid data, but the demo no longer
		// demonstrates the injected fault — say so rather than archiving
		// a broken demonstration silently.
		fmt.Fprintf(os.Stderr, "c4analyze: warning: demo scenario failed its shape check: %v\n", rep.ShapeErr)
	}
	res := rep.Result.(harness.AnalyzerDemoResult)
	rec := res.Recorder

	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("comm-stats.csv", func(f *os.File) error {
		return c4d.WriteCommStats(f, rec.Comms)
	}); err != nil {
		return "", err
	}
	if err := write("coll-stats.csv", func(f *os.File) error {
		return c4d.WriteCollStats(f, rec.Collectives)
	}); err != nil {
		return "", err
	}
	if err := write("rank-stats.csv", func(f *os.File) error {
		return c4d.WriteRankStats(f, rec.Waits)
	}); err != nil {
		return "", err
	}
	if err := write("conn-stats.csv", func(f *os.File) error {
		return c4d.WriteConnStats(f, rec.Messages)
	}); err != nil {
		return "", err
	}
	return filepath.Join(dir, "conn-stats.csv"), nil
}
