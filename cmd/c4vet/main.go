// Command c4vet runs the repository's determinism-lint suite
// (internal/analysis) over Go packages: the replay invariants that have
// each been broken by a shipped bug before — map-order float
// accumulation, wall-clock reads in simulation code, process-global
// randomness, swallowed telemetry errors, severed Contexts — plus the
// deprecated-API gate. `make lint` runs it over ./... as a blocking CI
// stage.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load failure. Findings are
// suppressed per line with `//c4vet:allow <analyzer> <reason>`; the
// reason is mandatory and unused or malformed directives are themselves
// findings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"c4/internal/analysis"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func run(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("c4vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: c4vet [-C dir] [-list] [packages]\n\n"+
			"Runs the c4 determinism-lint suite over the packages (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "c4vet: %v\n", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "c4vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, relativize(d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "c4vet: %d findings\n", len(diags))
		return 1
	}
	return 0
}

// relativize shortens absolute file paths to the current directory for
// readable, stable output.
func relativize(d analysis.Diagnostic) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
