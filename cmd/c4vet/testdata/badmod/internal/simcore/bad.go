// Package simcore is the c4vet smoke-test fixture: a "simulation"
// package committing one of every violation the suite guards against.
// The cmd/c4vet test runs the real binary path over this module and
// asserts the exit code and diagnostics.
package simcore

import (
	"context"
	"math/rand"
	"time"

	"badmod/internal/sim"
)

// Jitter draws from the process-global source and reads the wall clock.
func Jitter() time.Duration {
	return time.Duration(rand.Intn(int(time.Since(time.Now()))+1) + 1)
}

// Horizon reinterprets a wall span as a virtual-clock instant.
func Horizon(d time.Duration) sim.Time {
	return sim.Time(d)
}

// Sum folds floats in map iteration order.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}

// Sink is a telemetry-shaped method whose error gets dropped below.
type Sink struct{}

// Flush pretends to drain a buffer.
func (Sink) Flush() error { return nil }

// Drain drops the Flush error and severs its caller's context.
func Drain(ctx context.Context, s Sink) {
	s.Flush()
	_ = context.Background()
	_ = ctx
}

// NewSim is the retired constructor.
//
// Deprecated: use OpenSim.
func NewSim() int { return 0 }

// OpenSim is the supported constructor.
func OpenSim() int { return 0 }

// Boot still calls the retired constructor.
func Boot() int {
	//c4vet:allow wallclock
	return NewSim()
}
