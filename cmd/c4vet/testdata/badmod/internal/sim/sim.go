// Package sim gives the smoke module a virtual-clock type so simcore
// can commit the timeconfuse violation against it.
package sim

import "time"

// Time is a virtual-clock instant in nanoseconds.
type Time int64

// Duration bridges a virtual instant to a wall span explicitly.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// FromDuration bridges a wall span to a virtual instant explicitly.
func FromDuration(d time.Duration) Time { return Time(d) }
