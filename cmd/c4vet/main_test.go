package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeKnownBadModule runs c4vet end to end over the known-bad
// fixture module and asserts the exit code and one diagnostic per
// analyzer — the whole-binary counterpart of the per-analyzer
// analysistest fixtures.
func TestSmokeKnownBadModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-C", "testdata/badmod", "./..."})
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, wanted := range []string{
		"[mapiterfloat] float += on \"s\" inside range over map",
		"[wallclock] time.Now reads the wall clock",
		"[wallclock] time.Since reads the wall clock",
		"[globalrand] math/rand.Intn outside internal/sim",
		"[sinkerr] error result of Sink.Flush discarded",
		"[ctxleak] context.Background() in a function that already has a Context (param ctx)",
		"[timeconfuse] sim.Time(...) of a time.Duration reinterprets a span",
		"[deprecated] use of deprecated NewSim: use OpenSim.",
		"[allow] allow directive for \"wallclock\" has no reason",
		"bad.go:",
	} {
		if !strings.Contains(out, wanted) {
			t.Errorf("output missing %q\nfull output:\n%s", wanted, out)
		}
	}
	if !strings.Contains(stderr.String(), "findings") {
		t.Errorf("stderr missing findings count: %q", stderr.String())
	}
}

// TestCleanModuleExitsZero pins the blocking-gate contract on the real
// repository: zero unsuppressed findings, exit 0. This is the same run
// `make lint` performs.
func TestCleanModuleExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; covered by make lint and the full suite")
	}
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-C", "../..", "./..."})
	if code != 0 {
		t.Fatalf("c4vet over the repository = exit %d, want clean\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"mapiterfloat", "wallclock", "globalrand", "sinkerr", "ctxleak", "timeconfuse", "deprecated"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list missing %s:\n%s", name, stdout.String())
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./no/such/dir/..."}); code != 2 {
		t.Fatalf("exit code = %d, want 2 (load failure)", code)
	}
}
