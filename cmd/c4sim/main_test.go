package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The smoke tests drive the CLI's registry paths end to end (the
// interactive sim loop is exercised by the harness packages).

func TestRunScenariosSmoke(t *testing.T) {
	if code := runScenarios("tableI", 1, 1); code != 0 {
		t.Fatalf("runScenarios(tableI) = %d, want 0", code)
	}
}

func TestRunScenariosUnknown(t *testing.T) {
	if code := runScenarios("no-such-scenario", 1, 1); code != 2 {
		t.Fatalf("runScenarios(unknown) = %d, want 2", code)
	}
}

func TestRunCampaignsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep in -short mode")
	}
	dir := t.TempDir()
	if code := runCampaigns("straggler-sweep", dir, 1, 0); code != 0 {
		t.Fatalf("runCampaigns(straggler-sweep) = %d, want 0", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "straggler-sweep.json"))
	if err != nil {
		t.Fatalf("campaign JSON report not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("campaign JSON report empty")
	}
}

func TestRunCampaignsUnknown(t *testing.T) {
	if code := runCampaigns("no-such-campaign", "", 1, 1); code != 2 {
		t.Fatalf("runCampaigns(unknown) = %d, want 2", code)
	}
}

func TestRunTenancySmoke(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(trace, []byte(`{"events": [
		{"at_s": 0, "name": "a", "nodes": 2, "duration_s": 10},
		{"at_s": 1, "name": "b", "nodes": 2, "duration_s": 10}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runTenancy(trace, "packed", "c4p", 8, 30*time.Second, 1); code != 0 {
		t.Fatalf("runTenancy = %d, want 0", code)
	}
}

func TestRunTenancyBadInputs(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(trace, []byte(`{"events": [{"at_s": 0, "nodes": 2, "duration_s": 10}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runTenancy(filepath.Join(t.TempDir(), "missing.json"), "packed", "c4p", 8, time.Second, 1); code != 2 {
		t.Fatalf("missing trace file: code %d, want 2", code)
	}
	if code := runTenancy(trace, "diagonal", "c4p", 8, time.Second, 1); code != 2 {
		t.Fatalf("bad policy: code %d, want 2", code)
	}
	if code := runTenancy(trace, "packed", "carrier-pigeon", 8, time.Second, 1); code != 2 {
		t.Fatalf("bad provider: code %d, want 2", code)
	}
}

func TestRunPlanSmoke(t *testing.T) {
	if code := runPlan("tp8/pp2/dp2/ga2", "gpt22b", "c4p", 0, false, 2, 1, ""); code != 0 {
		t.Fatalf("runPlan = %d, want 0", code)
	}
}

func TestRunPlanBadInputs(t *testing.T) {
	if code := runPlan("qp4", "gpt22b", "c4p", 0, false, 1, 1, ""); code != 2 {
		t.Fatalf("bad strategy: code %d, want 2", code)
	}
	if code := runPlan("tp8/dp2", "gpt9000", "c4p", 0, false, 1, 1, ""); code != 2 {
		t.Fatalf("bad model: code %d, want 2", code)
	}
	if code := runPlan("pp8/dp8", "gpt22b", "c4p", 0, false, 1, 1, ""); code != 2 {
		t.Fatalf("oversized world: code %d, want 2", code)
	}
	if code := runPlan("tp8/dp2", "gpt22b", "smoke-signals", 0, false, 1, 1, ""); code != 2 {
		t.Fatalf("bad provider: code %d, want 2", code)
	}
}
