package main

import (
	"os"
	"path/filepath"
	"testing"
)

// The smoke tests drive the CLI's registry paths end to end (the
// interactive sim loop is exercised by the harness packages).

func TestRunScenariosSmoke(t *testing.T) {
	if code := runScenarios("tableI", 1, 1); code != 0 {
		t.Fatalf("runScenarios(tableI) = %d, want 0", code)
	}
}

func TestRunScenariosUnknown(t *testing.T) {
	if code := runScenarios("no-such-scenario", 1, 1); code != 2 {
		t.Fatalf("runScenarios(unknown) = %d, want 2", code)
	}
}

func TestRunCampaignsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweep in -short mode")
	}
	dir := t.TempDir()
	if code := runCampaigns("straggler-sweep", dir, 1, 0); code != 0 {
		t.Fatalf("runCampaigns(straggler-sweep) = %d, want 0", code)
	}
	data, err := os.ReadFile(filepath.Join(dir, "straggler-sweep.json"))
	if err != nil {
		t.Fatalf("campaign JSON report not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("campaign JSON report empty")
	}
}

func TestRunCampaignsUnknown(t *testing.T) {
	if code := runCampaigns("no-such-campaign", "", 1, 1); code != 2 {
		t.Fatalf("runCampaigns(unknown) = %d, want 2", code)
	}
}
