// Command c4sim runs an end-to-end training scenario on the simulated
// cluster: a distributed job under C4D monitoring and C4P traffic
// engineering, with an injectable fault, driving the full detect ->
// isolate -> restart loop and printing the timeline. It can also run any
// experiment from the scenario registry by name.
//
// Example:
//
//	c4sim -job gpt22b -fault crash -fault-at 30s
//	c4sim -job llama7b -fault straggler -horizon 10m
//	c4sim -job gpt22b -fault nic -no-c4d   # watch the job hang without C4D
//	c4sim -list                            # enumerate registered scenarios
//	c4sim -scenario fig12                  # run one paper experiment
//	c4sim -scenario 'fig*,pipeline'        # run a selection concurrently
//	c4sim -campaign flap-sweep             # one fault-injection campaign
//	c4sim -campaign all -campaign-json out # all campaigns + JSON reports
//	c4sim -tenancy-trace trace.json        # replay a multi-tenant arrival trace
//	c4sim -tenancy-trace trace.json -tenancy-policy spread -provider baseline
//	c4sim -plan tp8/pp4/dp2/ga8            # compile + run a 3D-parallelism plan
//	c4sim -plan tp8/pp2/dp8/ga4 -job gpt175b -plan-bucket-mib 256 -plan-overlap
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"c4/internal/accl"
	"c4/internal/c4d"
	"c4/internal/cluster"
	"c4/internal/faults"
	"c4/internal/harness"
	"c4/internal/job"
	"c4/internal/plan"
	"c4/internal/rca"
	"c4/internal/scenario"
	"c4/internal/sched"
	"c4/internal/sim"
	"c4/internal/steering"
	"c4/internal/telemetry"
	"c4/internal/tenancy"
	"c4/internal/topo"
	"c4/internal/workload"
)

func main() {
	var (
		jobName   = flag.String("job", "gpt22b", "workload model: "+strings.Join(workload.ModelNames(), " | "))
		provider  = flag.String("provider", "c4p", "path control: baseline | c4p | c4p-dynamic")
		fault     = flag.String("fault", "none", "inject: none | crash | straggler | nic")
		faultAt   = flag.Duration("fault-at", 30*time.Second, "fault injection time")
		victim    = flag.Int("victim", 6, "faulty node")
		horizon   = flag.Duration("horizon", 15*time.Minute, "virtual time to simulate")
		noC4D     = flag.Bool("no-c4d", false, "disable C4D monitoring and recovery")
		placement = flag.String("placement", "spread", "node placement: topo (pack leaf groups) | spread (maximize spine traffic)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		scenarios = flag.String("scenario", "", "run registered scenarios by name (comma-separated, globs allowed) instead of the interactive job sim")
		campaign  = flag.String("campaign", "", "run fault-injection campaigns by short name ('all', comma-separated)")
		cmpJSON   = flag.String("campaign-json", "", "with -campaign: also write one <name>.json report per campaign into this directory")
		workers   = flag.Int("workers", 0, "concurrent scenarios with -scenario (0 = GOMAXPROCS)")
		telemOut  = flag.String("telemetry-out", "", "write the run's telemetry stream as JSONL to this file (replay offline with c4watch)")
		online    = flag.Bool("online", false, "attach the streaming online detector and log its detections live")
		tenTrace  = flag.String("tenancy-trace", "", "replay a multi-tenant JSON arrival trace on a shared fabric (see README for the format)")
		tenPolicy = flag.String("tenancy-policy", "packed", "with -tenancy-trace: placement policy: packed | spread | random")
		tenSpines = flag.Int("tenancy-spines", 8, "with -tenancy-trace: spine switches per rail (8 = 1:1, 4 = 2:1)")
		planStr   = flag.String("plan", "", "compile and run a 3D-parallelism plan for -job, e.g. 'tp8/pp4/dp2/ga8' (PP*DP nodes, spread placement; TP stays intra-node)")
		planBkt   = flag.Float64("plan-bucket-mib", 0, "with -plan: DP gradient bucket size in MiB (0 = one bucket)")
		planOvl   = flag.Bool("plan-overlap", false, "with -plan: launch buckets inside the final backward pass (comm/compute overlap)")
		planIters = flag.Int("plan-iters", 5, "with -plan: iterations to run")
	)
	flag.Parse()

	if *list {
		scenario.FprintList(os.Stdout, scenario.All())
		return
	}
	if *campaign != "" {
		os.Exit(runCampaigns(*campaign, *cmpJSON, *seed, *workers))
	}
	if *scenarios != "" {
		os.Exit(runScenarios(*scenarios, *seed, *workers))
	}
	if *tenTrace != "" {
		os.Exit(runTenancy(*tenTrace, *tenPolicy, *provider, *tenSpines, *horizon, *seed))
	}
	if *planStr != "" {
		os.Exit(runPlan(*planStr, *jobName, *provider, *planBkt, *planOvl, *planIters, *seed))
	}

	spec := topo.MultiJobTestbed(8)
	spec.Nodes = 24 // 16 primaries + 8 spares
	env := harness.NewEnv(spec)
	machines := cluster.NewCluster(16, 8, 8)

	var kind harness.ProviderKind
	switch *provider {
	case "baseline":
		kind = harness.Baseline
	case "c4p":
		kind = harness.C4PStatic
	case "c4p-dynamic":
		kind = harness.C4PDynamic
	default:
		fmt.Fprintf(os.Stderr, "c4sim: unknown provider %q\n", *provider)
		os.Exit(2)
	}

	var nodes []int
	switch *placement {
	case "topo":
		// Topology-aware placement (§III-B): pack leaf groups so ring
		// edges avoid the spine layer entirely where possible.
		sc := sched.New(env.Topo)
		alloc, err := sc.Allocate(16)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
			os.Exit(1)
		}
		nodes = sched.RingOrder(env.Topo, alloc)
	case "spread":
		// Worst-case placement: every ring edge crosses the spines.
		for i := 0; i < 16; i++ {
			if i%2 == 0 {
				nodes = append(nodes, i/2)
			} else {
				nodes = append(nodes, 8+i/2)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "c4sim: unknown placement %q\n", *placement)
		os.Exit(2)
	}
	model, ok := workload.ModelByName(*jobName)
	if !ok {
		fmt.Fprintf(os.Stderr, "c4sim: unknown job %q (have: %s)\n",
			*jobName, strings.Join(workload.ModelNames(), ", "))
		os.Exit(2)
	}
	specs := workload.Fig14Jobs(nodes)
	var jobSpec workload.JobSpec
	switch model.Name {
	case workload.GPT22B.Name:
		jobSpec = specs[0]
	case workload.Llama7B.Name:
		jobSpec = specs[1]
	case workload.GPT175B.Name:
		jobSpec = specs[2]
	default:
		// Models outside Fig 14 (Llama-13B) run the Job1-style TP8×DP16
		// configuration with their own gradient volume.
		jobSpec = specs[0]
		jobSpec.Name, jobSpec.Model = model.Name, model
	}

	logf := func(format string, args ...any) {
		fmt.Printf("[%12v] ", env.Eng.Now())
		fmt.Printf(format+"\n", args...)
	}

	analyzer := rca.NewAnalyzer(0)
	var fleet *c4d.Fleet
	var master *c4d.Master
	jobCfg := job.Config{
		Engine: env.Eng, Net: env.Net,
		Provider:   env.NewProvider(kind, *seed),
		Rails:      []int{0},
		Spec:       jobSpec,
		Rand:       sim.NewRand(*seed),
		QPsPerConn: 4,
	}
	if !*noC4D {
		master = c4d.NewMaster(c4d.Config{})
		fleet = c4d.NewFleet(env.Eng, master)
		jobCfg.Sink = fleet
	}

	// Streaming telemetry plane: a JSONL export and/or the online detector
	// racing batch C4D, fed from the same instrumentation point.
	var pipe *telemetry.Pipeline
	var streamW *telemetry.StreamWriter
	var streamFile *os.File
	{
		var consumers []telemetry.Consumer
		if *telemOut != "" {
			f, err := os.Create(*telemOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
				os.Exit(1)
			}
			streamFile = f
			streamW = telemetry.NewStreamWriter(f)
			consumers = append(consumers, streamW)
		}
		if *online {
			det := telemetry.NewOnlineDetector(env.Eng, telemetry.DetectorConfig{})
			det.Subscribe(func(d c4d.Detection) {
				fmt.Printf("[%12v] ONLINE: %v\n", env.Eng.Now(), d)
			})
			consumers = append(consumers, det)
		}
		if len(consumers) > 0 {
			pipe = telemetry.NewPipeline(env.Eng, telemetry.PipelineConfig{}, consumers...)
			jobCfg.Sink = accl.Fanout(jobCfg.Sink, pipe)
		}
	}
	j, err := job.New(jobCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		os.Exit(1)
	}
	j.OnIteration(func(i int, d sim.Time) {
		if i%20 == 0 {
			logf("iteration %d done in %v (%.1f samples/sec)",
				i, d, jobSpec.SamplesPerIter/d.Seconds())
		}
	})

	if master != nil {
		nextSpare := 16
		svc := steering.NewService(steering.Config{
			Engine: env.Eng, Cluster: machines,
			IsolationDelay: 30 * sim.Second,
			RestartDelay:   3 * sim.Minute,
			Isolate: func(node int) {
				logf("steering: isolating node %d, stopping job", node)
				j.Stop()
			},
			Restart: func(node, repl int) {
				spare := nextSpare
				nextSpare++
				logf("steering: replacing node %d with spare %d, restarting job", node, spare)
				if err := j.ReplaceNode(node, spare); err != nil {
					logf("steering: replace failed: %v", err)
					return
				}
				j.Run(1_000_000, nil)
			},
		})
		master.Subscribe(func(ev c4d.Event) {
			logf("C4D: %v", ev)
			rep := analyzer.Classify(ev)
			top := rep.Top()
			logf("RCA: most likely %v (%.0f%% confidence)", top.Kind, top.Confidence*100)
			if ev.Syndrome == c4d.CommHang || ev.Syndrome == c4d.NonCommHang {
				svc.Handle(ev)
			}
		})
	}

	j.Run(1_000_000, nil)

	if *fault != "none" {
		env.Eng.Schedule(sim.FromDuration(*faultAt), func() {
			switch *fault {
			case "crash":
				logf("FAULT: crashing worker process on node %d", *victim)
				// The server monitor sees the GPU Xid before anyone else.
				analyzer.Observe(rca.Telemetry{Time: env.Eng.Now(), Kind: rca.TelemetryXidError, Node: *victim})
				j.SetCrashed(*victim, true)
			case "straggler":
				logf("FAULT: node %d becomes a straggler (+400ms/iteration)", *victim)
				j.SetStraggler(*victim, 400*sim.Millisecond)
			case "nic":
				logf("FAULT: node %d loses both NIC ports on rail 0", *victim)
				analyzer.Observe(rca.Telemetry{Time: env.Eng.Now(), Kind: rca.TelemetryNICDown, Node: *victim})
				for p := 0; p < topo.Planes; p++ {
					port := env.Topo.PortAt(*victim, 0, p)
					env.Net.SetLinkUp(port.Up, false)
					env.Net.SetLinkUp(port.Down, false)
				}
			default:
				fmt.Fprintf(os.Stderr, "c4sim: unknown fault %q\n", *fault)
				os.Exit(2)
			}
		})
	}

	env.Eng.RunUntil(sim.FromDuration(*horizon))
	if fleet != nil {
		fleet.Stop()
	}
	if pipe != nil {
		pipe.Stop()
		if streamW != nil {
			if err := streamW.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "c4sim: writing telemetry stream: %v\n", err)
				os.Exit(1)
			}
			streamFile.Close()
			logf("telemetry: %d records written to %s (%d dropped)",
				streamW.Written(), *telemOut, pipe.Dropped())
		}
	}

	iters := j.IterTimes()
	fmt.Println()
	logf("simulation finished: %d iterations completed", len(iters))
	if len(iters) > 0 {
		var sum sim.Time
		for _, d := range iters {
			sum += d
		}
		avg := sum / sim.Time(len(iters))
		logf("average iteration: %v (%.1f samples/sec)", avg, jobSpec.SamplesPerIter/avg.Seconds())
	}
	if master != nil {
		logf("C4D emitted %d events", len(master.Events()))
	}
}

// runCampaigns executes fault-injection campaigns through the registry
// ("flap-sweep" -> scenario "campaign/flap-sweep"), optionally archiving
// each campaign's machine-readable JSON report.
func runCampaigns(selection, jsonDir string, seed int64, workers int) int {
	scns, err := scenario.Select(faults.CampaignSelection(selection))
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	reports := (&scenario.Runner{Workers: workers}).Run(seed, scns)
	failures := 0
	for _, rep := range reports {
		if scenario.FprintReport(os.Stdout, rep) {
			failures++
		}
		if jsonDir == "" || rep.Err != nil {
			continue
		}
		res, ok := rep.Result.(*faults.Result)
		if !ok {
			continue
		}
		if err := writeCampaignJSON(jsonDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func writeCampaignJSON(dir string, res *faults.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.Name+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}

// runTenancy replays a JSON arrival trace through the multi-tenant engine:
// concurrent jobs placed by the chosen policy, contending on one shared
// fabric under the chosen steering arm.
func runTenancy(path, policy, provider string, spines int, horizon time.Duration, seed int64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	trace, err := tenancy.ParseTrace(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	pol, err := sched.ParsePolicy(policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	// Same flag semantics as the scenario path above: "c4p" is static
	// traffic engineering, "c4p-dynamic" adds reallocation + QP balance.
	var arm tenancy.Arm
	switch provider {
	case "baseline":
		arm = tenancy.ArmPinnedECMP
	case "c4p":
		arm = tenancy.ArmC4PStatic
	case "c4p-dynamic":
		arm = tenancy.ArmC4P
	default:
		fmt.Fprintf(os.Stderr, "c4sim: unknown provider %q\n", provider)
		return 2
	}
	res := tenancy.Run(tenancy.Config{
		Spines:  spines,
		Policy:  pol,
		Arm:     arm,
		Horizon: sim.FromDuration(horizon),
		Seed:    seed,
		Trace:   trace,
	})
	fmt.Print(res)
	return 0
}

// runPlan compiles one 3D-parallelism strategy into a training-iteration
// plan, executes it on the 16-node testbed under the chosen provider, and
// prints the compiled schedule plus the measured iteration breakdown —
// the single-job window into what the plan/* scenario family sweeps.
func runPlan(strategy, modelName, provider string, bucketMiB float64, overlap bool, iters int, seed int64) int {
	par, err := workload.ParseParallelism(strategy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	model, ok := workload.ModelByName(modelName)
	if !ok {
		fmt.Fprintf(os.Stderr, "c4sim: unknown job %q (have: %s)\n",
			modelName, strings.Join(workload.ModelNames(), ", "))
		return 2
	}
	world := par.PP * par.DP
	if world > 16 {
		fmt.Fprintf(os.Stderr, "c4sim: strategy %v needs %d nodes, testbed has 16\n", par, world)
		return 2
	}
	var kind harness.ProviderKind
	switch provider {
	case "baseline":
		kind = harness.Baseline
	case "c4p":
		kind = harness.C4PStatic
	case "c4p-dynamic":
		kind = harness.C4PDynamic
	default:
		fmt.Fprintf(os.Stderr, "c4sim: unknown provider %q\n", provider)
		return 2
	}
	// Spread placement: alternating leaf groups, so ring and pipeline
	// edges cross the spine layer — the same placement the plan/*
	// scenarios sweep.
	nodes := harness.InterleavedNodes(world)
	env := harness.NewEnv(topo.MultiJobTestbed(8))
	spec := workload.JobSpec{
		Name:                 model.Name,
		Model:                model,
		Par:                  par,
		Nodes:                nodes,
		ComputePerMicroBatch: 550 * sim.Millisecond,
		ComputeJitter:        0.02,
		SamplesPerIter:       64,
	}
	j, err := job.New(job.Config{
		Engine: env.Eng, Net: env.Net,
		Provider:   env.NewProvider(kind, seed),
		Rails:      []int{0},
		Spec:       spec,
		Plan:       plan.Options{BucketBytes: bucketMiB * (1 << 20), Overlap: overlap},
		Rand:       sim.NewRand(seed),
		QPsPerConn: 8,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 1
	}
	fmt.Println(j.Plan())
	j.OnIteration(func(i int, d sim.Time) {
		fmt.Printf("iteration %2d: %v\n", i, d)
	})
	var rep job.Report
	j.Run(iters, func(r job.Report) { rep = r })
	env.Eng.Run()
	fmt.Printf("\n%d iterations under %v:\n", rep.Iters, kind)
	fmt.Printf("  avg iteration  %v (%.1f samples/s)\n", rep.AvgIter, rep.SamplesPerSec)
	fmt.Printf("  compute        %v\n", rep.AvgCompute)
	fmt.Printf("  pipeline bubble %v\n", rep.AvgBubble)
	fmt.Printf("  exposed comm   %v (%.1f%% of the iteration)\n", rep.AvgExposed, rep.ExposedShare()*100)
	return 0
}

// runScenarios executes a registry selection on the worker-pool runner and
// prints each result with its shape verdict and execution stats.
func runScenarios(selection string, seed int64, workers int) int {
	scns, err := scenario.Select(selection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	reports := (&scenario.Runner{Workers: workers}).Run(seed, scns)
	failures := 0
	for _, rep := range reports {
		if scenario.FprintReport(os.Stdout, rep) {
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}
