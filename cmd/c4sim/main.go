// Command c4sim runs an end-to-end training scenario on the simulated
// cluster: a distributed job under C4D monitoring and C4P traffic
// engineering, with an injectable fault, driving the full detect ->
// isolate -> restart loop and printing the timeline. It can also run any
// experiment from the scenario registry by name.
//
// Every mode compiles its flags into a c4.SessionSpec and runs it through
// the same c4.Session lifecycle the c4serve daemon serves, so a CLI run
// and a served session with the same spec and seed are byte-identical.
//
// Example:
//
//	c4sim -job gpt22b -fault crash -fault-at 30s
//	c4sim -job llama7b -fault straggler -horizon 10m
//	c4sim -job gpt22b -fault nic -no-c4d   # watch the job hang without C4D
//	c4sim -list                            # enumerate registered scenarios
//	c4sim -scenario fig12                  # run one paper experiment
//	c4sim -scenario 'fig*,pipeline'        # run a selection concurrently
//	c4sim -campaign flap-sweep             # one fault-injection campaign
//	c4sim -campaign all -campaign-json out # all campaigns + JSON reports
//	c4sim -tenancy-trace trace.json        # replay a multi-tenant arrival trace
//	c4sim -tenancy-trace trace.json -tenancy-policy spread -provider baseline
//	c4sim -plan tp8/pp4/dp2/ga8            # compile + run a 3D-parallelism plan
//	c4sim -plan tp8/pp2/dp8/ga4 -job gpt175b -plan-bucket-mib 256 -plan-overlap
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"c4"
	"c4/internal/faults"
	"c4/internal/scenario"
	"c4/internal/workload"
)

func main() {
	var (
		jobName   = flag.String("job", "gpt22b", "workload model: "+strings.Join(workload.ModelNames(), " | "))
		provider  = flag.String("provider", "c4p", "path control: baseline | c4p | c4p-dynamic")
		fault     = flag.String("fault", "none", "inject: none | crash | straggler | nic")
		faultAt   = flag.Duration("fault-at", 30*time.Second, "fault injection time")
		victim    = flag.Int("victim", 6, "faulty node")
		horizon   = flag.Duration("horizon", 15*time.Minute, "virtual time to simulate")
		noC4D     = flag.Bool("no-c4d", false, "disable C4D monitoring and recovery")
		placement = flag.String("placement", "spread", "node placement: topo (pack leaf groups) | spread (maximize spine traffic)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list registered scenarios and exit")
		scenarios = flag.String("scenario", "", "run registered scenarios by name (comma-separated, globs allowed) instead of the interactive job sim")
		campaign  = flag.String("campaign", "", "run fault-injection campaigns by short name ('all', comma-separated)")
		cmpJSON   = flag.String("campaign-json", "", "with -campaign: also write one <name>.json report per campaign into this directory")
		workers   = flag.Int("workers", 0, "concurrent scenarios with -scenario (0 = GOMAXPROCS)")
		telemOut  = flag.String("telemetry-out", "", "write the run's telemetry stream as JSONL to this file (replay offline with c4watch)")
		traceOut  = flag.String("trace-out", "", "write the run's causal trace as Chrome trace-event JSON to this file (open in Perfetto, summarize with c4trace)")
		online    = flag.Bool("online", false, "attach the streaming online detector and log its detections live")
		tenTrace  = flag.String("tenancy-trace", "", "replay a multi-tenant JSON arrival trace on a shared fabric (see README for the format)")
		tenPolicy = flag.String("tenancy-policy", "packed", "with -tenancy-trace: placement policy: packed | spread | random")
		tenSpines = flag.Int("tenancy-spines", 8, "with -tenancy-trace: spine switches per rail (8 = 1:1, 4 = 2:1)")
		planStr   = flag.String("plan", "", "compile and run a 3D-parallelism plan for -job, e.g. 'tp8/pp4/dp2/ga8' (PP*DP nodes, spread placement; TP stays intra-node)")
		planBkt   = flag.Float64("plan-bucket-mib", 0, "with -plan: DP gradient bucket size in MiB (0 = one bucket)")
		planOvl   = flag.Bool("plan-overlap", false, "with -plan: launch buckets inside the final backward pass (comm/compute overlap)")
		planIters = flag.Int("plan-iters", 5, "with -plan: iterations to run")
	)
	flag.Parse()

	if *list {
		scenario.FprintList(os.Stdout, scenario.All())
		return
	}
	if *campaign != "" {
		os.Exit(runCampaigns(*campaign, *cmpJSON, *seed, *workers))
	}
	if *scenarios != "" {
		os.Exit(runScenarios(*scenarios, *seed, *workers))
	}
	if *tenTrace != "" {
		os.Exit(runTenancy(*tenTrace, *tenPolicy, *provider, *tenSpines, *horizon, *seed))
	}
	if *planStr != "" {
		os.Exit(runPlan(*planStr, *jobName, *provider, *planBkt, *planOvl, *planIters, *seed, *traceOut))
	}

	spec := c4.SessionSpec{
		Seed: *seed,
		Job: &c4.SessionJob{
			Model:     *jobName,
			Provider:  *provider,
			Placement: *placement,
			Fault:     *fault,
			FaultAtS:  faultAt.Seconds(),
			Victim:    victim,
			HorizonS:  horizon.Seconds(),
			NoC4D:     *noC4D,
			Online:    *online,
		},
	}
	os.Exit(runSession(spec, *telemOut, *traceOut))
}

// runSession executes one job/plan-mode session spec, optionally exporting
// its telemetry stream as JSONL and its causal trace as Chrome JSON — the
// CLI face of the shared session API. Spec errors exit 2 (bad flags),
// runtime errors exit 1.
func runSession(spec c4.SessionSpec, telemOut, traceOut string) int {
	sess, err := c4.NewSession(c4.SessionOptions{Spec: spec, Log: os.Stdout})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	defer sess.Close()
	var streamW *c4.TelemetryStreamWriter
	var streamFile *os.File
	if telemOut != "" {
		f, err := os.Create(telemOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
			return 1
		}
		streamFile = f
		streamW = c4.NewTelemetryStreamWriter(f)
		sess.AttachSink(streamW)
	}
	var tracer *c4.Tracer
	if traceOut != "" {
		tracer = c4.NewTracer()
		sess.AttachTracer(tracer)
	}
	if err := sess.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 1
	}
	if streamW != nil {
		if err := streamW.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: writing telemetry stream: %v\n", err)
			return 1
		}
		streamFile.Close()
		fmt.Printf("telemetry: %d records written to %s\n", streamW.Written(), telemOut)
	}
	if tracer != nil {
		if err := writeTraceFile(traceOut, tracer); err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: writing trace: %v\n", err)
			return 1
		}
		fmt.Printf("trace: %d spans written to %s\n", len(tracer.Spans()), traceOut)
	}
	return 0
}

// writeTraceFile exports the tracer's spans as Chrome trace-event JSON.
func writeTraceFile(path string, tracer *c4.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c4.WriteTrace(f, tracer.Spans()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runCampaigns executes fault-injection campaigns through the registry
// ("flap-sweep" -> scenario "campaign/flap-sweep"), optionally archiving
// each campaign's machine-readable JSON report.
func runCampaigns(selection, jsonDir string, seed int64, workers int) int {
	scns, err := scenario.Select(faults.CampaignSelection(selection))
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	reports := (&scenario.Runner{Workers: workers}).Run(context.Background(), seed, scns)
	failures := 0
	for _, rep := range reports {
		if scenario.FprintReport(os.Stdout, rep) {
			failures++
		}
		if jsonDir == "" || rep.Err != nil {
			continue
		}
		res, ok := rep.Result.(*faults.Result)
		if !ok {
			continue
		}
		if err := writeCampaignJSON(jsonDir, res); err != nil {
			fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}

func writeCampaignJSON(dir string, res *faults.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, res.Name+".json"))
	if err != nil {
		return err
	}
	defer f.Close()
	return res.WriteJSON(f)
}

// runTenancy replays a JSON arrival trace through the multi-tenant engine:
// concurrent jobs placed by the chosen policy, contending on one shared
// fabric under the chosen steering arm.
func runTenancy(path, policy, provider string, spines int, horizon time.Duration, seed int64) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	sess, err := c4.NewSession(c4.SessionOptions{
		Spec: c4.SessionSpec{
			Seed: seed,
			Tenancy: &c4.SessionTenancy{
				Trace:    data,
				Policy:   policy,
				Provider: provider,
				Spines:   spines,
				HorizonS: horizon.Seconds(),
			},
		},
		Log: os.Stdout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	defer sess.Close()
	if err := sess.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 1
	}
	return 0
}

// runPlan compiles one 3D-parallelism strategy into a training-iteration
// plan, executes it on the 16-node testbed under the chosen provider, and
// prints the compiled schedule plus the measured iteration breakdown —
// the single-job window into what the plan/* scenario family sweeps.
func runPlan(strategy, modelName, provider string, bucketMiB float64, overlap bool, iters int, seed int64, traceOut string) int {
	return runSession(c4.SessionSpec{
		Seed: seed,
		Job: &c4.SessionJob{
			Model:         modelName,
			Provider:      provider,
			Plan:          strategy,
			PlanBucketMiB: bucketMiB,
			PlanOverlap:   overlap,
			PlanIters:     iters,
		},
	}, "", traceOut)
}

// runScenarios executes a registry selection on the worker-pool runner and
// prints each result with its shape verdict and execution stats.
func runScenarios(selection string, seed int64, workers int) int {
	scns, err := scenario.Select(selection)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c4sim: %v\n", err)
		return 2
	}
	reports := (&scenario.Runner{Workers: workers}).Run(context.Background(), seed, scns)
	failures := 0
	for _, rep := range reports {
		if scenario.FprintReport(os.Stdout, rep) {
			failures++
		}
	}
	if failures > 0 {
		return 1
	}
	return 0
}
