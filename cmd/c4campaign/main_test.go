package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTinyManifest drops a fast two-trial manifest into dir.
func writeTinyManifest(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "tiny.json")
	const src = `{
	  "version": 1, "name": "cli-tiny", "seed": 1,
	  "entries": [{"family": "mixed", "trials": 2, "horizon_s": 90}]
	}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// exec drives the CLI entry point, returning exit code and both streams.
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, args)
	return code, stdout.String(), stderr.String()
}

func TestUsageAndBadArgs(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"expand"},
		{"run"},
		{"run", "-manifest", "m.json", "-shard", "4/4"},
		{"run", "-manifest", "m.json", "-shard", "banana"},
		{"merge"},
		{"check"},
		{"check", "a.json", "b.json"},
	}
	for _, args := range cases {
		if code, _, _ := exec(t, args...); code != 2 {
			t.Errorf("c4campaign %v: exit %d, want usage error 2", args, code)
		}
	}
	if code, _, _ := exec(t, "-h"); code != 0 {
		t.Error("-h should exit 0")
	}
	if code, _, stderr := exec(t, "expand", "-manifest", "/nonexistent.json"); code != 1 || stderr == "" {
		t.Errorf("missing manifest: exit %d, stderr %q", code, stderr)
	}
}

func TestParseShard(t *testing.T) {
	if s, n, err := parseShard("3/8"); err != nil || s != 3 || n != 8 {
		t.Fatalf("parseShard(3/8) = %d, %d, %v", s, n, err)
	}
	for _, bad := range []string{"", "x", "1", "2/2", "-1/4", "0/0", "1/-2"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Errorf("parseShard(%q) accepted", bad)
		}
	}
}

func TestExpandSubcommand(t *testing.T) {
	dir := t.TempDir()
	manifest := writeTinyManifest(t, dir)
	code, out, stderr := exec(t, "expand", "-manifest", manifest)
	if code != 0 {
		t.Fatalf("expand: exit %d, stderr %s", code, stderr)
	}
	for _, want := range []string{"cli-tiny", "sha256:", "2 trials", "mix-00", "mix-01"} {
		if !strings.Contains(out, want) {
			t.Errorf("expand output missing %q:\n%s", want, out)
		}
	}
}

// TestEndToEnd is the CLI-level mirror of the package determinism test:
// run serially and sharded through the real subcommands, merge both, and
// require byte-identical artifacts; then exercise the failure paths a
// smoke loop depends on (gap refusal, resume, check).
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	manifest := writeTinyManifest(t, dir)
	serial := filepath.Join(dir, "serial.json")
	p0 := filepath.Join(dir, "p0.json")
	p1 := filepath.Join(dir, "p1.json")

	if code, _, stderr := exec(t, "run", "-manifest", manifest, "-out", serial); code != 0 {
		t.Fatalf("serial run: exit %d\n%s", code, stderr)
	}
	ckpt := filepath.Join(dir, "p0.ckpt")
	if code, _, stderr := exec(t, "run", "-manifest", manifest, "-shard", "0/2", "-out", p0, "-checkpoint", ckpt); code != 0 {
		t.Fatalf("shard 0/2: exit %d\n%s", code, stderr)
	}
	if code, _, stderr := exec(t, "run", "-manifest", manifest, "-shard", "1/2", "-out", p1); code != 0 {
		t.Fatalf("shard 1/2: exit %d\n%s", code, stderr)
	}

	mergedSerial := filepath.Join(dir, "merged-serial.json")
	mergedSharded := filepath.Join(dir, "merged-sharded.json")
	if code, _, stderr := exec(t, "merge", "-manifest", manifest, "-check", "-out", mergedSerial, serial); code != 0 {
		t.Fatalf("serial merge: exit %d\n%s", code, stderr)
	}
	if code, out, stderr := exec(t, "merge", "-manifest", manifest, "-check", "-out", mergedSharded, p1, p0); code != 0 {
		t.Fatalf("sharded merge: exit %d\n%s", code, stderr)
	} else if !strings.Contains(out, "aggregate:") {
		t.Fatalf("merge summary missing aggregate line:\n%s", out)
	}
	a, err := os.ReadFile(mergedSerial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mergedSharded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("serial and sharded merges differ at the CLI level")
	}

	// A missing shard must fail the merge, not shrink the report.
	if code, _, stderr := exec(t, "merge", "-out", filepath.Join(dir, "gap.json"), p0); code != 1 || !strings.Contains(stderr, "missing") {
		t.Fatalf("gap merge: exit %d, stderr %s", code, stderr)
	}

	// Resume: re-running shard 0 against its complete checkpoint executes
	// nothing and reproduces the artifact bytes.
	p0resumed := filepath.Join(dir, "p0-resumed.json")
	if code, _, stderr := exec(t, "run", "-manifest", manifest, "-shard", "0/2", "-out", p0resumed, "-checkpoint", ckpt); code != 0 {
		t.Fatalf("resume run: exit %d\n%s", code, stderr)
	} else if !strings.Contains(stderr, "0 to run") {
		t.Fatalf("resume did not use the checkpoint:\n%s", stderr)
	}
	ra, _ := os.ReadFile(p0)
	rb, _ := os.ReadFile(p0resumed)
	if !bytes.Equal(ra, rb) {
		t.Fatal("resumed shard artifact differs from the original")
	}

	if code, out, stderr := exec(t, "check", "-manifest", manifest, mergedSharded); code != 0 || !strings.Contains(out, "OK (2 trials)") {
		t.Fatalf("check: exit %d\nstdout %s\nstderr %s", code, out, stderr)
	}

	// Checking against a different manifest must fail.
	otherSrc, _ := os.ReadFile(manifest)
	other := filepath.Join(dir, "other.json")
	if err := os.WriteFile(other, bytes.Replace(otherSrc, []byte(`"seed": 1`), []byte(`"seed": 2`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := exec(t, "check", "-manifest", other, mergedSharded); code != 1 {
		t.Fatalf("cross-manifest check: exit %d, want 1", code)
	}
}
