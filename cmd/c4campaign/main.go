// Command c4campaign drives manifest-defined Monte-Carlo campaigns at
// scale: it expands a versioned JSON manifest (campaign families × seed
// ranges × knob grids) into a numbered trial list, executes one shard's
// stride of it with checkpointed resumability, and deterministically
// merges shard partials into a single report with bootstrap confidence
// intervals — byte-identical to a serial single-shard run.
//
// Subcommands:
//
//	c4campaign expand -manifest m.json              # print the trial list
//	c4campaign run -manifest m.json -shard 0/4 \
//	    -out p0.json -checkpoint p0.ckpt            # run one shard
//	c4campaign merge -out merged.json p0.json ...   # reduce partials
//	c4campaign check merged.json                    # validate a report
//
// Exit codes: 0 success, 1 runtime/validation failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"c4/internal/campaign"
	"c4/internal/metrics"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: c4campaign <expand|run|merge|check> [flags]

  expand -manifest m.json
      print the deterministic numbered trial list the manifest expands to
  run -manifest m.json [-shard i/n] [-out file] [-checkpoint file] [-workers k]
      execute one shard's trials and write its partial-result artifact
  merge [-manifest m.json] [-out file] [-check] partial.json...
      combine shard partials into the merged report (refuses hash
      mismatches, duplicate trials and gaps)
  check [-manifest m.json] merged.json
      validate a merged report: coverage, ordering, finite statistics`)
	return 2
}

func run(stdout, stderr io.Writer, args []string) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "expand":
		return runExpand(stdout, stderr, args[1:])
	case "run":
		return runShard(stdout, stderr, args[1:])
	case "merge":
		return runMerge(stdout, stderr, args[1:])
	case "check":
		return runCheck(stdout, stderr, args[1:])
	case "-h", "-help", "--help":
		usage(stderr)
		return 0
	}
	fmt.Fprintf(stderr, "c4campaign: unknown subcommand %q\n", args[0])
	return usage(stderr)
}

// parseShard parses "i/n" shard coordinates.
func parseShard(s string) (shard, of int, err error) {
	if _, err := fmt.Sscanf(s, "%d/%d", &shard, &of); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/n, e.g. 0/4)", s)
	}
	if of < 1 || shard < 0 || shard >= of {
		return 0, 0, fmt.Errorf("bad -shard %q: want 0 <= i < n", s)
	}
	return shard, of, nil
}

func runExpand(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("c4campaign expand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifest := fs.String("manifest", "", "experiment manifest (JSON)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *manifest == "" {
		fmt.Fprintln(stderr, "c4campaign expand: -manifest is required")
		return 2
	}
	m, err := campaign.LoadManifest(*manifest)
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	specs, err := m.Expand()
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "manifest %s (%s): %d trials\n", m.Name, m.Hash(), len(specs))
	rows := make([][]string, 0, len(specs))
	for _, ts := range specs {
		rows = append(rows, []string{
			fmt.Sprint(ts.Index), ts.Family, fmt.Sprint(ts.Seed), ts.Knobs,
			ts.Trial.ID, fmt.Sprint(ts.TrialSeed), ts.Horizon.String(),
		})
	}
	fmt.Fprint(stdout, metrics.Table(
		[]string{"index", "family", "seed", "knobs", "trial", "trial-seed", "horizon"}, rows))
	return 0
}

func runShard(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("c4campaign run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		manifest   = fs.String("manifest", "", "experiment manifest (JSON)")
		shard      = fs.String("shard", "0/1", "shard coordinates i/n: run trials with index ≡ i (mod n)")
		out        = fs.String("out", "", "partial-result artifact path (default stdout)")
		checkpoint = fs.String("checkpoint", "", "per-shard JSONL progress file; an interrupted run resumes from it, re-running only missing trials")
		workers    = fs.Int("workers", 0, "concurrent trials (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *manifest == "" {
		fmt.Fprintln(stderr, "c4campaign run: -manifest is required")
		return 2
	}
	sh, of, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign run: %v\n", err)
		return 2
	}
	m, err := campaign.LoadManifest(*manifest)
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	sr := &campaign.ShardRun{
		Manifest: m, Shard: sh, Of: of,
		Workers: *workers, Checkpoint: *checkpoint, Log: stderr,
	}
	p, err := sr.Run()
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	if err := writeArtifact(*out, stdout, p.WriteJSON); err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprintf(stdout, "shard %d/%d: %d trials -> %s\n", sh, of, len(p.Records), *out)
	}
	return 0
}

func runMerge(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("c4campaign merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		manifest = fs.String("manifest", "", "verify partials against this manifest's hash before merging (optional)")
		out      = fs.String("out", "", "merged-report path (default stdout)")
		check    = fs.Bool("check", false, "validate the merged report (coverage, ordering, finite statistics) and fail on violations")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "c4campaign merge: no partials given")
		return 2
	}
	var partials []*campaign.Partial
	for _, path := range fs.Args() {
		p, err := campaign.LoadPartial(path)
		if err != nil {
			fmt.Fprintf(stderr, "c4campaign: %v\n", err)
			return 1
		}
		partials = append(partials, p)
	}
	var merged *campaign.Merged
	var err error
	if *manifest != "" {
		m, merr := campaign.LoadManifest(*manifest)
		if merr != nil {
			fmt.Fprintf(stderr, "c4campaign: %v\n", merr)
			return 1
		}
		merged, err = campaign.MergeHash(m, partials)
	} else {
		merged, err = campaign.Merge(partials)
	}
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	if *check {
		if err := merged.Check(); err != nil {
			fmt.Fprintf(stderr, "c4campaign: %v\n", err)
			return 1
		}
	}
	if err := writeArtifact(*out, stdout, merged.WriteJSON); err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Fprint(stdout, merged.String())
	}
	return 0
}

func runCheck(stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("c4campaign check", flag.ContinueOnError)
	fs.SetOutput(stderr)
	manifest := fs.String("manifest", "", "additionally require the report's manifest hash to match this manifest")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "c4campaign check: exactly one merged report expected")
		return 2
	}
	merged, err := campaign.LoadMerged(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	if *manifest != "" {
		m, err := campaign.LoadManifest(*manifest)
		if err != nil {
			fmt.Fprintf(stderr, "c4campaign: %v\n", err)
			return 1
		}
		if h := m.Hash(); merged.ManifestHash != h {
			fmt.Fprintf(stderr, "c4campaign: report ran manifest %s, not %s (%s)\n", merged.ManifestHash, h, m.Name)
			return 1
		}
	}
	if err := merged.Check(); err != nil {
		fmt.Fprintf(stderr, "c4campaign: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: OK (%d trials)\n%s", fs.Arg(0), merged.Trials, merged.String())
	return 0
}

// writeArtifact writes via fn to path, or to fallback when path is
// empty. Artifacts are written atomically enough for the smoke loop: a
// temp file renamed into place, so a killed process never leaves a
// half-written partial that a later merge would trust.
func writeArtifact(path string, fallback io.Writer, fn func(io.Writer) error) error {
	if path == "" {
		return fn(fallback)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
