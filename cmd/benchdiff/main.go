// Command benchdiff is the bench-regression guard: it compares a freshly
// generated `c4bench -json` report against the committed baseline and
// fails (exit 1) when any tracked scenario metric or event count drifts
// beyond tolerance. The simulator is seed-deterministic, so drift means a
// behavioral change — regenerate the baseline (`make bench-baseline`) when
// the change is intended.
//
// Usage:
//
//	benchdiff [-tol 0.05] bench/baseline.json current.json
package main

import (
	"flag"
	"fmt"
	"os"

	"c4/internal/metrics"
)

func main() {
	tol := flag.Float64("tol", 0.05, "allowed relative drift per metric (0.05 = 5%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-tol FRAC] baseline.json current.json")
		os.Exit(2)
	}
	os.Exit(run(flag.Arg(0), flag.Arg(1), *tol))
}

func run(basePath, curPath string, tol float64) int {
	base, err := load(basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	cur, err := load(curPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		return 2
	}
	diffs := metrics.DiffBenchReports(base, cur, tol)
	if len(diffs) == 0 {
		fmt.Printf("benchdiff: %d scenario(s) within %.0f%% of %s\n",
			len(base.Scenarios), tol*100, basePath)
		return 0
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s:\n", len(diffs), basePath)
	for _, d := range diffs {
		fmt.Fprintf(os.Stderr, "  %s\n", d)
	}
	fmt.Fprintln(os.Stderr, "intended change? regenerate the baseline with `make bench-baseline`")
	return 1
}

func load(path string) (metrics.BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return metrics.BenchReport{}, err
	}
	defer f.Close()
	return metrics.ReadBenchReport(f)
}
