package main

import (
	"os"
	"path/filepath"
	"testing"

	"c4/internal/metrics"
)

func writeReport(t *testing.T, dir, name string, rep metrics.BenchReport) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchdiffRun(t *testing.T) {
	dir := t.TempDir()
	base := metrics.BenchReport{Seed: 1, Scenarios: []metrics.BenchScenario{
		{Name: "fig9", Events: 100, Metrics: map[string]float64{"busbw": 360}},
	}}
	basePath := writeReport(t, dir, "base.json", base)

	same := writeReport(t, dir, "same.json", base)
	if code := run(basePath, same, 0.05); code != 0 {
		t.Fatalf("identical reports: exit %d, want 0", code)
	}

	drifted := base
	drifted.Scenarios = []metrics.BenchScenario{
		{Name: "fig9", Events: 100, Metrics: map[string]float64{"busbw": 300}},
	}
	driftPath := writeReport(t, dir, "drift.json", drifted)
	if code := run(basePath, driftPath, 0.05); code != 1 {
		t.Fatalf("drifted report: exit %d, want 1", code)
	}
	// The same drift passes under a huge tolerance.
	if code := run(basePath, driftPath, 0.5); code != 0 {
		t.Fatalf("drift within tolerance: exit %d, want 0", code)
	}
}

func TestBenchdiffMissingFile(t *testing.T) {
	if code := run("/nonexistent/base.json", "/nonexistent/cur.json", 0.05); code != 2 {
		t.Fatalf("missing files: exit %d, want 2", code)
	}
}
